/// \file test_retry.cpp
/// Exactly-once retry, end to end: client deadlines (NetTimeout), the
/// per-tenant dedup window (hit / evicted / HELLO guards), resends
/// across a server restart answered bit-equal from the journal-rebuilt
/// window, and a RetryingClient chaos differential — responses dropped
/// at random after commit must leave the server's state identical to
/// an in-process twin that saw every request exactly once.
#include "net/client.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "fault/fault.hpp"
#include "helpers.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/obs.hpp"

namespace edfkit::net {
namespace {

using edfkit::testing::tk;

std::string temp_dir() {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("edfkit_retry_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void pump(Server& server, int ticks = 4) {
  for (int i = 0; i < ticks; ++i) (void)server.poll_once(10);
}

NetResponse round_trip(Server& server, Client& client, NetRequest req) {
  client.send(std::move(req));
  pump(server);
  return client.receive();
}

NetStatus status_of(const NetResponse& r) {
  return static_cast<NetStatus>(r.hdr.status);
}

NetRequest hello_request(const std::string& tenant,
                         const std::string& client = "",
                         std::uint8_t flags = 0) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Hello);
  req.hdr.flags = flags;
  req.tenant = tenant;
  req.durability =
      static_cast<std::uint8_t>(persist::FsyncPolicy::EveryRecord);
  req.fsync_interval = 1;
  req.client = client;
  return req;
}

NetRequest admit_request(const Task& t, std::uint64_t request_id = 0) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  req.hdr.request_id = request_id;
  req.task = t;
  return req;
}

NetRequest stats_request() {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
  return req;
}

class RetryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

// --------------------------------------------------------- deadlines

TEST_F(RetryTest, ReceiveDeadlineThrowsNetTimeout) {
  Server server({});
  // Nonzero connect timeout exercises the bounded-handshake path.
  Client client = Client::connect("127.0.0.1", server.port(), 500);
  ASSERT_EQ(status_of(round_trip(server, client, hello_request("t"))),
            NetStatus::Ok);

  client.set_timeouts(0, 50);
  client.send(admit_request(tk(1, 8, 8)));
  // The server is never ticked, so no response can arrive in time.
  EXPECT_THROW((void)client.receive(), NetTimeout);

  // Expiry leaves the connection open: once the server does answer,
  // the response is still deliverable (callers that resend must
  // close() precisely because of this).
  pump(server);
  EXPECT_EQ(status_of(client.receive()), NetStatus::Ok);
}

TEST_F(RetryTest, ConnectToDeadPortFailsFast) {
  std::uint16_t dead_port = 0;
  {
    Server probe({});
    dead_port = probe.port();
  }  // destroyed: nothing listens there now
  EXPECT_THROW((void)Client::connect("127.0.0.1", dead_port, 500),
               std::system_error);
}

// ------------------------------------------------------- HELLO guards

TEST_F(RetryTest, HelloRejectsBadClientIdsAndFuseCombo) {
  Server server({});
  Client c1 = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(server, c1, hello_request("t", "bad/name"))),
            NetStatus::BadRequest);

  Client c2 = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(server, c2,
                                 hello_request("t", "c1", kFlagBatchFuse))),
            NetStatus::BadRequest);

  // A valid client id on its own is fine, and the HELLO response
  // carries a nonzero epoch.
  Client c3 = Client::connect("127.0.0.1", server.port());
  const NetResponse h = round_trip(server, c3, hello_request("t", "c1"));
  EXPECT_EQ(status_of(h), NetStatus::Ok);
  EXPECT_NE(h.epoch, 0u);
  EXPECT_EQ(h.highest_applied, 0u);
}

// ------------------------------------------------------- dedup window

TEST_F(RetryTest, ResendIsAnsweredFromTheWindowNotReapplied) {
  const std::string dir = temp_dir();
  obs::Obs obs;
  ServerOptions so;
  so.tenants.data_dir = dir;
  Server server(so, &obs);
  Client client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(status_of(round_trip(server, client, hello_request("t", "c1"))),
            NetStatus::Ok);

  const Task t1 = tk(1, 8, 8);
  const NetResponse first =
      round_trip(server, client, admit_request(t1, /*request_id=*/1));
  ASSERT_EQ(status_of(first), NetStatus::Ok);

  // Same id again: a dedup hit, byte-equal to the original answer, and
  // the task is NOT admitted a second time.
  const NetResponse again =
      round_trip(server, client, admit_request(t1, /*request_id=*/1));
  EXPECT_EQ(status_of(again), NetStatus::Ok);
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(obs.registry().counter_value("net_dedup_hits_total"), 1u);

  const NetResponse s = round_trip(server, client, stats_request());
  EXPECT_EQ(s.stats.residents, 1u);

  std::filesystem::remove_all(dir);
}

TEST_F(RetryTest, EvictedIdAnswersInternalError) {
  const std::string dir = temp_dir();
  ServerOptions so;
  so.tenants.data_dir = dir;
  so.tenants.dedup_window = 2;
  Server server(so);
  Client client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(status_of(round_trip(server, client, hello_request("t", "c1"))),
            NetStatus::Ok);

  NetResponse last;
  for (std::uint64_t rid = 1; rid <= 4; ++rid) {
    const Time span = static_cast<Time>(8 * rid);
    last = round_trip(server, client,
                      admit_request(tk(1, span, span), rid));
    ASSERT_EQ(status_of(last), NetStatus::Ok);
  }

  // rid 1 fell off the 2-deep window: applied, but the answer is gone.
  // Anything but an error would risk a double apply.
  EXPECT_EQ(status_of(round_trip(server, client,
                                 admit_request(tk(1, 8, 8), 1))),
            NetStatus::InternalError);
  // rid 4 is still inside: answered from the cache.
  const NetResponse hit = round_trip(
      server, client, admit_request(tk(1, 32, 32), 4));
  EXPECT_EQ(status_of(hit), NetStatus::Ok);
  EXPECT_EQ(hit.id, last.id);

  std::filesystem::remove_all(dir);
}

// ------------------------------------- restart: journal-rebuilt dedup

TEST_F(RetryTest, ResendAcrossServerRestartDedupsFromJournal) {
  const std::string dir = temp_dir();
  ServerOptions so;
  so.tenants.data_dir = dir;

  const Task t1 = tk(1, 8, 8);
  const Task t2 = tk(1, 16, 16);
  const Task t3 = tk(1, 32, 32);

  std::uint64_t epoch1 = 0;
  {
    Server server1(so);
    Client client = Client::connect("127.0.0.1", server1.port());
    const NetResponse h =
        round_trip(server1, client, hello_request("t", "c1"));
    ASSERT_EQ(status_of(h), NetStatus::Ok);
    epoch1 = h.epoch;

    ASSERT_EQ(status_of(round_trip(server1, client, admit_request(t1, 1))),
              NetStatus::Ok);

    // The second admit commits (journal + dedup mark) but its response
    // is dropped — the kill-between-commit-and-reply shape.
    fault::point(fault::kDropResponseSite).arm(fault::Mode::Once);
    client.send(admit_request(t2, 2));
    pump(server1);
  }  // server1 gone; the reply was never delivered
  fault::disarm_all();

  // An in-process twin that saw each request exactly once.
  AdmissionController twin{so.tenants.admission};
  const AdmissionDecision d1 = twin.try_admit(t1);
  const AdmissionDecision d2 = twin.try_admit(t2);
  const AdmissionDecision d3 = twin.try_admit(t3);
  ASSERT_TRUE(d1.admitted && d2.admitted && d3.admitted);

  obs::Obs obs2;
  Server server2(so, &obs2);
  Client client = Client::connect("127.0.0.1", server2.port());
  const NetResponse h2 = round_trip(server2, client, hello_request("t", "c1"));
  ASSERT_EQ(status_of(h2), NetStatus::Ok);
  EXPECT_NE(h2.epoch, epoch1);        // the restart is observable
  EXPECT_EQ(h2.highest_applied, 2u);  // both admits were applied

  // Resending the lost request is answered from the window the journal
  // replay rebuilt — applied once, and the id matches the twin's.
  const NetResponse r2 = round_trip(server2, client, admit_request(t2, 2));
  EXPECT_EQ(status_of(r2), NetStatus::Ok);
  EXPECT_EQ(r2.id, d2.id);
  EXPECT_EQ(obs2.registry().counter_value("net_dedup_hits_total"), 1u);

  // New work continues above the applied window.
  const NetResponse r3 = round_trip(server2, client, admit_request(t3, 3));
  ASSERT_EQ(status_of(r3), NetStatus::Ok);
  EXPECT_EQ(r3.id, d3.id);

  const NetResponse s = round_trip(server2, client, stats_request());
  EXPECT_EQ(s.stats.residents, 3u);  // no double applies anywhere

  std::filesystem::remove_all(dir);
}

// ------------------------------------ RetryingClient chaos differential

TEST_F(RetryTest, RetryingClientCleanPathNeverRetries) {
  Server server({});
  std::thread loop([&] { server.run(); });

  RetryPolicy pol;
  pol.seed = 3;
  RetryingClient rc("127.0.0.1", server.port(), "t", "c1", pol);
  for (int i = 0; i < 8; ++i) {
    const Time span = static_cast<Time>(8 * (i + 1));
    const NetResponse r = rc.admit(tk(1, span, span));
    EXPECT_EQ(status_of(r), NetStatus::Ok);
  }
  EXPECT_EQ(rc.retries(), 0u);
  EXPECT_EQ(rc.reconnects(), 1u);
  EXPECT_NE(rc.epoch(), 0u);

  server.stop();
  loop.join();
}

TEST_F(RetryTest, DropResponseChaosMatchesInProcessTwin) {
  const std::string dir = temp_dir();
  obs::Obs obs;
  ServerOptions so;
  so.tenants.data_dir = dir;
  Server server(so, &obs);
  std::thread loop([&] { server.run(); });

  // Drop ~20% of all responses after commit. The retrying client must
  // converge every call to the applied answer regardless.
  fault::point(fault::kDropResponseSite)
      .arm(fault::Mode::Random, 1, /*probability=*/0.2, /*seed=*/5);

  RetryPolicy pol;
  pol.receive_timeout_ms = 100;
  pol.connect_timeout_ms = 1000;
  pol.backoff_base_ms = 1;
  pol.backoff_cap_ms = 10;
  pol.max_attempts = 50;
  pol.seed = 7;
  RetryingClient rc("127.0.0.1", server.port(), "t", "c1", pol,
                    persist::FsyncPolicy::EveryN, 8);

  AdmissionController twin{so.tenants.admission};
  std::vector<TaskId> admitted;
  for (int i = 0; i < 40; ++i) {
    // Climbing utilization: the tail of the workload gets rejected, so
    // the differential covers both verdicts.
    const Time span = static_cast<Time>(3 + (i % 10));
    const Task t = tk(1, span, span);
    const NetResponse r = rc.admit(t);
    const AdmissionDecision d = twin.try_admit(t);
    ASSERT_EQ(status_of(r) == NetStatus::Ok, d.admitted) << "op " << i;
    if (d.admitted) {
      EXPECT_EQ(r.id, d.id) << "op " << i;
      admitted.push_back(d.id);
    }
    // Interleave removals so the resident set churns.
    if (i % 3 == 2 && !admitted.empty()) {
      const TaskId victim = admitted.front();
      admitted.erase(admitted.begin());
      const NetResponse rr = rc.remove(victim);
      const bool removed = twin.remove(victim);
      ASSERT_EQ(status_of(rr), NetStatus::Ok);
      EXPECT_EQ(rr.removed, removed ? 1u : 0u) << "op " << i;
    }
  }

  fault::disarm_all();
  NetRequest sreq = stats_request();
  const NetResponse s = rc.call(std::move(sreq));
  ASSERT_EQ(status_of(s), NetStatus::Ok);
  EXPECT_EQ(s.stats.residents, twin.demand_header().residents);

  // The chaos actually happened, and retries dedup-hit instead of
  // double-applying.
  EXPECT_GT(rc.retries(), 0u);
  EXPECT_GT(obs.registry().counter_value("net_dedup_hits_total"), 0u);

  server.stop();
  loop.join();
  std::filesystem::remove_all(dir);
}

TEST_F(RetryTest, RetryingClientRidesOutAQuarantine) {
  const std::string dir = temp_dir();
  ServerOptions so;
  so.tenants.data_dir = dir;
  so.reprobe_interval_ms = 20;
  Server server(so);
  std::thread loop([&] { server.run(); });

  RetryPolicy pol;
  pol.receive_timeout_ms = 200;
  pol.backoff_base_ms = 5;
  pol.backoff_cap_ms = 50;
  pol.seed = 11;
  RetryingClient rc("127.0.0.1", server.port(), "t", "c1", pol,
                    persist::FsyncPolicy::EveryRecord, 1);

  ASSERT_EQ(status_of(rc.admit(tk(1, 8, 8))), NetStatus::Ok);

  // The next journal append fails its fsync: the tenant quarantines,
  // the client sees Unavailable, backs off past the re-probe, and the
  // resend lands after recovery.
  fault::point("journal.append.fsync").arm(fault::Mode::Once);
  const NetResponse r = rc.admit(tk(1, 16, 16));
  EXPECT_EQ(status_of(r), NetStatus::Ok);
  EXPECT_GT(rc.retries(), 0u);

  server.stop();
  loop.join();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- backoff floor + failover

// A server retry_after_ms hint is a hard floor on the backoff sleep,
// even when the policy's jitter cap sits below it (the cap used to
// undercut the hint, burning every attempt inside the server's stated
// not-before window). A standby answers mutating ops Unavailable with
// retry_after_ms = reprobe_interval_ms; with a 10ms cap and two
// attempts, honoring the 150ms hint is visible in wall-clock time.
TEST_F(RetryTest, RetryAfterHintFloorsBackoffAboveCap) {
  ServerOptions so;
  so.tenants.standby = true;
  so.reprobe_interval_ms = 150;
  Server server(so);
  std::thread loop([&] { server.run(); });

  RetryPolicy pol;
  pol.max_attempts = 2;
  pol.backoff_base_ms = 1;
  pol.backoff_cap_ms = 10;
  RetryingClient rc("127.0.0.1", server.port(), "t", "c1", pol);

  const auto t0 = std::chrono::steady_clock::now();
  const NetResponse r = rc.admit(tk(1, 8, 8));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(status_of(r), NetStatus::Unavailable);
  EXPECT_EQ(r.retry_after_ms, 150u);
  EXPECT_GE(elapsed.count(), 150);

  server.stop();
  loop.join();
}

// A connect failure rotates to the next endpoint immediately: the
// first endpoint in the list refuses (nothing listens there), and the
// very first call lands on the second.
TEST_F(RetryTest, FailoverOnConnectFailure) {
  std::uint16_t dead_port = 0;
  {
    Server ephemeral({});  // bind, learn a free port, release it
    dead_port = ephemeral.port();
  }
  Server server({});
  std::thread loop([&] { server.run(); });

  RetryingClient rc({{"127.0.0.1", dead_port},
                     {"127.0.0.1", server.port()}},
                    "t", "c1");
  EXPECT_EQ(status_of(rc.admit(tk(1, 8, 8))), NetStatus::Ok);
  EXPECT_EQ(rc.failovers(), 1u);
  EXPECT_EQ(rc.endpoint().port, server.port());

  server.stop();
  loop.join();
}

// A persistent-Unavailable streak rotates too: the first endpoint is
// an unpromoted standby that answers every mutating op Unavailable;
// after failover_after_unavailable consecutive answers the client
// walks to the healthy primary instead of burning all its attempts.
TEST_F(RetryTest, FailoverOnUnavailableStreak) {
  ServerOptions so;
  so.tenants.standby = true;
  Server standby(so);
  std::thread standby_loop([&] { standby.run(); });
  Server primary({});
  std::thread primary_loop([&] { primary.run(); });

  RetryPolicy pol;
  pol.failover_after_unavailable = 2;
  pol.backoff_base_ms = 1;
  pol.backoff_cap_ms = 5;
  RetryingClient rc({{"127.0.0.1", standby.port()},
                     {"127.0.0.1", primary.port()}},
                    "t", "c1", pol);

  EXPECT_EQ(status_of(rc.admit(tk(1, 8, 8))), NetStatus::Ok);
  EXPECT_EQ(rc.failovers(), 1u);
  EXPECT_EQ(rc.endpoint().port, primary.port());
  // Settled on the new endpoint: no further rotation.
  EXPECT_EQ(status_of(rc.admit(tk(1, 16, 16))), NetStatus::Ok);
  EXPECT_EQ(rc.failovers(), 1u);

  standby.stop();
  primary.stop();
  standby_loop.join();
  primary_loop.join();
}

// An empty endpoint list is a construction error, not a first-call
// surprise.
TEST_F(RetryTest, EmptyEndpointListThrows) {
  EXPECT_THROW(RetryingClient(std::vector<Endpoint>{}, "t", "c1"),
               std::invalid_argument);
}

}  // namespace
}  // namespace edfkit::net
