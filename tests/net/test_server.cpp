/// End-to-end tests for the admission network server: protocol guards,
/// backpressure, the frame fuzzer (torn/oversized/corrupt/interleaved
/// frames must never crash the loop, leak a connection, or mis-frame a
/// later valid request), and the socket-vs-in-process differential —
/// including a server kill+recover mid-trace.
///
/// Most tests drive the event loop deterministically from the test
/// thread via Server::poll_once (the client's blocking socket calls are
/// interleaved with explicit ticks); the restart differential runs
/// run() in a background thread like production does.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "admission/controller.hpp"
#include "admission/replay.hpp"
#include "helpers.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "query/certificate.hpp"
#include "util/random.hpp"

namespace edfkit::net {
namespace {

using edfkit::testing::tk;

std::string temp_dir() {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("edfkit_net_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Tick the loop enough times for a connect + request + response cycle
/// (accept on one tick, read/serve on the next; extra ticks are no-ops).
void pump(Server& server, int ticks = 4) {
  for (int i = 0; i < ticks; ++i) (void)server.poll_once(10);
}

NetRequest hello_request(const std::string& tenant, std::uint8_t flags = 0,
                         std::uint8_t durability = 0) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Hello);
  req.hdr.flags = flags;
  req.tenant = tenant;
  req.durability = durability;
  return req;
}

NetRequest admit_request(const Task& t, std::uint8_t flags = 0) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  req.hdr.flags = flags;
  req.task = t;
  return req;
}

/// Synchronous round trip against a poll_once-driven server.
NetResponse round_trip(Server& server, Client& client, NetRequest req) {
  client.send(std::move(req));
  pump(server);
  return client.receive();
}

NetStatus status_of(const NetResponse& r) {
  return static_cast<NetStatus>(r.hdr.status);
}

/// Raw TCP connection for malformed-bytes tests.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return fd;
}

void write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// True once the peer closed the connection (poll via nonblocking-ish
/// read with the loop being ticked between probes).
bool peer_closed(Server& server, int fd) {
  for (int i = 0; i < 50; ++i) {
    pump(server, 2);
    std::uint8_t b;
    const ssize_t n = ::recv(fd, &b, 1, MSG_DONTWAIT);
    if (n == 0) return true;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
  }
  return false;
}

// -------------------------------------------------------- happy path

TEST(ServerEndToEnd, HelloAdmitRemoveStatsPing) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());

  NetResponse h = round_trip(server, client, hello_request("alpha"));
  EXPECT_EQ(status_of(h), NetStatus::Ok);
  EXPECT_EQ(h.lsn, 0u);  // in-memory tenant: no journal window

  const NetResponse a =
      round_trip(server, client, admit_request(tk(2, 8, 10)));
  ASSERT_EQ(status_of(a), NetStatus::Ok);
  EXPECT_NE(a.id, kInvalidTaskId);

  NetRequest grp;
  grp.hdr.op = static_cast<std::uint8_t>(NetOp::AdmitGroup);
  grp.group = {tk(1, 10, 20), tk(2, 20, 40)};
  const NetResponse g = round_trip(server, client, std::move(grp));
  ASSERT_EQ(status_of(g), NetStatus::Ok);
  EXPECT_EQ(g.ids.size(), 2u);

  NetRequest stats;
  stats.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
  NetResponse s = round_trip(server, client, std::move(stats));
  EXPECT_EQ(status_of(s), NetStatus::Ok);
  EXPECT_EQ(s.stats.residents, 3u);
  EXPECT_FALSE(s.stats_json.empty());

  NetRequest rm;
  rm.hdr.op = static_cast<std::uint8_t>(NetOp::RemoveGroup);
  rm.ids = {a.id, g.ids[0], g.ids[1]};
  const NetResponse r = round_trip(server, client, std::move(rm));
  EXPECT_EQ(status_of(r), NetStatus::Ok);
  EXPECT_EQ(r.removed, 3u);

  NetRequest ping;
  ping.hdr.op = static_cast<std::uint8_t>(NetOp::Ping);
  EXPECT_EQ(status_of(round_trip(server, client, std::move(ping))),
            NetStatus::Ok);
}

TEST(ServerEndToEnd, CertificateRoundTripVerifiesClientSide) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(
                server, client,
                hello_request("certified", kFlagCertifiedTenant))),
            NetStatus::Ok);

  // Mirror the server's resident set client-side and verify the
  // returned proof against *our* copy, not the server's word.
  TaskSet mine;
  const Task t1 = tk(2, 8, 10);
  const NetResponse a = round_trip(
      server, client, admit_request(t1, kFlagWantCertificate));
  ASSERT_EQ(status_of(a), NetStatus::Ok);
  ASSERT_NE(a.hdr.flags & kFlagHasCertificate, 0);
  mine.add(t1);
  EXPECT_TRUE(verify(mine, a.certificate).valid);

  // An infeasible arrival: the infeasibility certificate must verify
  // against the widened set (residents + the rejected task).
  const Task hog = tk(9, 5, 100);
  const NetResponse rej = round_trip(
      server, client, admit_request(hog, kFlagWantCertificate));
  ASSERT_EQ(status_of(rej), NetStatus::Rejected);
  ASSERT_NE(rej.hdr.flags & kFlagHasCertificate, 0);
  TaskSet widened = mine;
  widened.add(hog);
  EXPECT_TRUE(verify(widened, rej.certificate).valid);
  EXPECT_FALSE(verify(mine, rej.certificate).valid);
}

TEST(ServerEndToEnd, GlobalModeTenantAdmitsBeyondOneProcessor) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());

  // HELLO with platform_m = 4: the tenant's controller runs the
  // global-EDF ladder over 4 processors.
  NetRequest hello = hello_request("gedf", kFlagCertifiedTenant);
  hello.platform_m = 4;
  const NetResponse h = round_trip(server, client, std::move(hello));
  ASSERT_EQ(status_of(h), NetStatus::Ok);
  EXPECT_EQ(h.platform_m, 4u);

  // Three tasks of utilization 0.6 each: total density 1.8 > 1, so a
  // uniprocessor tenant rejects the second arrival — but on m = 4,
  // GFB (1.8 <= 4 - 3 * 0.6) admits all three.
  TaskSet mine;
  for (int i = 0; i < 3; ++i) {
    const Task t = tk(6, 10, 10);
    const NetResponse a = round_trip(
        server, client, admit_request(t, kFlagWantCertificate));
    ASSERT_EQ(status_of(a), NetStatus::Ok) << "arrival " << i;
    ASSERT_NE(a.hdr.flags & kFlagHasCertificate, 0) << "arrival " << i;
    mine.add(t);
    // The certificate names the platform and must verify against the
    // client's own copy of the resident set.
    EXPECT_EQ(a.certificate.processors, 4u);
    EXPECT_TRUE(a.certificate.multiprocessor());
    EXPECT_TRUE(verify(mine, a.certificate).valid);
  }

  // STATS reports the admission platform.
  NetRequest stats;
  stats.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
  const NetResponse s = round_trip(server, client, std::move(stats));
  ASSERT_EQ(status_of(s), NetStatus::Ok);
  EXPECT_EQ(s.platform_m, 4u);
  EXPECT_EQ(s.stats.residents, 3u);

  // A later HELLO attaches: the tenant keeps its platform (like its
  // durability class) and the response says so.
  Client second = Client::connect("127.0.0.1", server.port());
  NetRequest attach = hello_request("gedf");
  attach.platform_m = 1;
  const NetResponse h2 = round_trip(server, second, std::move(attach));
  ASSERT_EQ(status_of(h2), NetStatus::Ok);
  EXPECT_EQ(h2.platform_m, 4u);

  // The same workload on a fresh uniprocessor tenant rejects once the
  // ladder sees utilization above 1.
  Client uni = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(status_of(round_trip(server, uni, hello_request("uni"))),
            NetStatus::Ok);
  ASSERT_EQ(status_of(round_trip(server, uni, admit_request(tk(6, 10, 10)))),
            NetStatus::Ok);
  EXPECT_EQ(status_of(round_trip(server, uni, admit_request(tk(6, 10, 10)))),
            NetStatus::Rejected);
}

TEST(ServerGuards, BadPlatformHelloIsRejected) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());
  NetRequest hello = hello_request("badm");
  hello.platform_m = 0;  // invalid: a platform has >= 1 processor
  EXPECT_EQ(status_of(round_trip(server, client, std::move(hello))),
            NetStatus::BadRequest);
}

// ------------------------------------------------------------- guards

TEST(ServerGuards, ProtocolErrorsGetTypedStatuses) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());

  // Tenant-scoped op before HELLO.
  EXPECT_EQ(status_of(round_trip(server, client,
                                 admit_request(tk(1, 5, 10)))),
            NetStatus::NeedHello);

  // Unsupported protocol version.
  NetRequest vreq = hello_request("v");
  vreq.hdr.version = 42;
  EXPECT_EQ(status_of(round_trip(server, client, std::move(vreq))),
            NetStatus::BadVersion);

  // Unknown op code.
  NetRequest unknown;
  unknown.hdr.op = 99;
  EXPECT_EQ(status_of(round_trip(server, client, std::move(unknown))),
            NetStatus::UnknownOp);

  // Tenant names become file names; reject anything unsafe.
  EXPECT_EQ(status_of(round_trip(server, client,
                                 hello_request("../escape"))),
            NetStatus::BadRequest);
  EXPECT_EQ(status_of(round_trip(server, client, hello_request(""))),
            NetStatus::BadRequest);

  // Invalid durability class.
  EXPECT_EQ(status_of(round_trip(server, client,
                                 hello_request("t", 0, /*durability=*/9))),
            NetStatus::BadRequest);

  // Invalid task parameters after a good HELLO.
  EXPECT_EQ(status_of(round_trip(server, client, hello_request("t"))),
            NetStatus::Ok);
  EXPECT_EQ(status_of(round_trip(server, client,
                                 admit_request(tk(-1, 5, 10)))),
            NetStatus::BadRequest);

  // The connection survived all of it.
  EXPECT_EQ(status_of(round_trip(server, client,
                                 admit_request(tk(1, 5, 10)))),
            NetStatus::Ok);
  EXPECT_EQ(server.connections(), 1u);
}

// ------------------------------------------------------ backpressure

TEST(ServerShed, ResidentCapShedsAdmitsButNeverRemovals) {
  ServerOptions opts;
  opts.shed.max_residents = 2;
  opts.shed.retry_after_ms = 77;
  Server server(opts);
  Client client = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(server, client, hello_request("t"))),
            NetStatus::Ok);

  const NetResponse a1 =
      round_trip(server, client, admit_request(tk(1, 50, 100)));
  const NetResponse a2 =
      round_trip(server, client, admit_request(tk(1, 60, 100)));
  ASSERT_EQ(status_of(a1), NetStatus::Ok);
  ASSERT_EQ(status_of(a2), NetStatus::Ok);

  // At the cap: the admission test must not even run — Shed, not
  // Rejected, with the retry hint.
  const NetResponse shed =
      round_trip(server, client, admit_request(tk(1, 70, 100)));
  EXPECT_EQ(status_of(shed), NetStatus::Shed);
  EXPECT_EQ(shed.retry_after_ms, 77u);

  // Removals drain load; they are never shed.
  NetRequest rm;
  rm.hdr.op = static_cast<std::uint8_t>(NetOp::Remove);
  rm.id = a1.id;
  const NetResponse r = round_trip(server, client, std::move(rm));
  EXPECT_EQ(status_of(r), NetStatus::Ok);
  EXPECT_EQ(r.removed, 1u);

  // Below the cap again: admits flow.
  EXPECT_EQ(status_of(round_trip(server, client,
                                 admit_request(tk(1, 70, 100)))),
            NetStatus::Ok);
}

// ------------------------------------------------------------ fuzzer

TEST(ServerFuzz, OversizedAndCorruptFramesCloseOnlyTheirConnection) {
  Server server({});

  // A healthy connection that must keep working throughout.
  Client good = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(server, good, hello_request("good"))),
            NetStatus::Ok);

  // Oversized length prefix.
  {
    const int fd = raw_connect(server.port());
    std::vector<std::uint8_t> junk(16, 0xFF);  // len prefix ~4 GiB
    write_all(fd, junk);
    EXPECT_TRUE(peer_closed(server, fd));
    ::close(fd);
  }

  // Valid frame with a corrupted payload byte (CRC mismatch).
  {
    const int fd = raw_connect(server.port());
    std::vector<std::uint8_t> wire;
    append_frame(wire, encode_request(hello_request("x")));
    wire[kFrameHeaderBytes + 2] ^= 0x40;
    write_all(fd, wire);
    EXPECT_TRUE(peer_closed(server, fd));
    ::close(fd);
  }

  // The good connection neither died nor mis-framed.
  EXPECT_EQ(status_of(round_trip(server, good,
                                 admit_request(tk(1, 5, 10)))),
            NetStatus::Ok);
  EXPECT_EQ(server.connections(), 1u);  // both bad conns fully reaped
}

TEST(ServerFuzz, ShortBodyGetsBadRequestAndTheConnectionLives) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());

  // CRC-valid frame whose body is shorter than ADMIT demands.
  NetRequest req = admit_request(tk(1, 5, 10));
  req.hdr.request_id = 424242;
  std::vector<std::uint8_t> payload = encode_request(req);
  payload.resize(kMessageHeaderBytes);
  std::vector<std::uint8_t> wire;
  append_frame(wire, payload);
  write_all(client.fd(), wire);
  pump(server);
  const NetResponse resp = client.receive();
  EXPECT_EQ(status_of(resp), NetStatus::BadRequest);
  EXPECT_EQ(resp.hdr.request_id, 424242u);  // echoed from the header

  // The frame boundary was still trusted: the next valid request works.
  EXPECT_EQ(status_of(round_trip(server, client, hello_request("t"))),
            NetStatus::Ok);
}

TEST(ServerFuzz, InterleavedPartialFramesReassemblePerConnection) {
  Server server({});

  // Three connections, each sending its HELLO in byte-dribbles,
  // interleaved — per-connection reassembly must never cross streams.
  constexpr int kConns = 3;
  std::vector<Client> clients;
  std::vector<std::vector<std::uint8_t>> wires;
  for (int i = 0; i < kConns; ++i) {
    clients.push_back(Client::connect("127.0.0.1", server.port()));
    std::vector<std::uint8_t> wire;
    NetRequest req = hello_request("tenant-" + std::to_string(i));
    req.hdr.request_id = 1;  // Client::send is bypassed; stamp our own
    append_frame(wire, encode_request(req));
    wires.push_back(std::move(wire));
  }
  pump(server);  // accept all three

  // Round-robin one byte at a time.
  std::size_t longest = 0;
  for (const auto& w : wires) longest = std::max(longest, w.size());
  for (std::size_t off = 0; off < longest; ++off) {
    for (int i = 0; i < kConns; ++i) {
      if (off < wires[i].size()) {
        write_all(clients[i].fd(), {wires[i][off]});
      }
    }
    if (off % 5 == 0) pump(server, 1);  // tick mid-dribble
  }
  pump(server);

  for (int i = 0; i < kConns; ++i) {
    const NetResponse h = clients[i].receive();
    EXPECT_EQ(status_of(h), NetStatus::Ok) << "conn " << i;
  }
  // And each connection is bound to the right tenant: admit on conn 0,
  // stats on the others show 1/0/0 residents.
  EXPECT_EQ(status_of(round_trip(server, clients[0],
                                 admit_request(tk(1, 5, 10)))),
            NetStatus::Ok);
  for (int i = 0; i < kConns; ++i) {
    NetRequest stats;
    stats.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
    const NetResponse s = round_trip(server, clients[i], std::move(stats));
    EXPECT_EQ(s.stats.residents, i == 0 ? 1u : 0u) << "conn " << i;
  }
  EXPECT_EQ(server.connections(), static_cast<std::size_t>(kConns));
}

TEST(ServerFuzz, RandomGarbageStormNeverCrashesOrLeaks) {
  Server server({});
  Client good = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(server, good, hello_request("good"))),
            NetStatus::Ok);

  Rng rng(77);
  const std::uint64_t rounds = 20 * testing::fuzz_multiplier();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    const int fd = raw_connect(server.port());
    std::vector<std::uint8_t> bytes;
    const int len = rng.uniform_int(1, 200);
    bytes.reserve(static_cast<std::size_t>(len));
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    write_all(fd, bytes);
    pump(server, 2);
    ::close(fd);  // client gives up whether or not the server did
    pump(server, 2);
  }
  pump(server, 4);

  // Only the good connection remains, and it still serves.
  EXPECT_EQ(server.connections(), 1u);
  EXPECT_EQ(status_of(round_trip(server, good,
                                 admit_request(tk(1, 5, 10)))),
            NetStatus::Ok);
}

TEST(ServerFuzz, IdleConnectionsAreSwept) {
  ServerOptions opts;
  opts.idle_timeout_ms = 40;
  Server server(opts);
  const int fd = raw_connect(server.port());
  pump(server);
  EXPECT_EQ(server.connections(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  pump(server, 2);
  EXPECT_EQ(server.connections(), 0u);
  ::close(fd);
}

// --------------------------------------------------------- batch fuse

TEST(ServerFuse, FusedAdmitsAreDecisionEquivalent) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(server, client,
                                 hello_request("fused", kFlagBatchFuse))),
            NetStatus::Ok);

  // Pipeline a run of admits so they decode within one tick; the
  // server must fuse them into one admit_group (visible as a group in
  // the tenant's stats) while answering each request individually.
  const std::vector<Task> tasks = {tk(1, 10, 20), tk(2, 30, 60),
                                   tk(1, 40, 80), tk(3, 50, 100)};
  for (const Task& t : tasks) client.send(admit_request(t));
  pump(server);

  AdmissionController twin;
  std::vector<TaskId> ids;
  for (const Task& t : tasks) {
    const NetResponse resp = client.receive();
    const AdmissionDecision d = twin.try_admit(t);
    ASSERT_EQ(status_of(resp), NetStatus::Ok);
    EXPECT_EQ(d.admitted, true);
    ids.push_back(resp.id);
  }
  // One certified scan for the run, not four.
  Tenant* tenant = server.tenants().find("fused");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->controller().stats().groups, 1u);
  EXPECT_EQ(tenant->controller().size(), tasks.size());

  // The handed-out ids are real: removing them empties the tenant.
  NetRequest rm;
  rm.hdr.op = static_cast<std::uint8_t>(NetOp::RemoveGroup);
  rm.ids = ids;
  const NetResponse r = round_trip(server, client, std::move(rm));
  EXPECT_EQ(r.removed, tasks.size());
  EXPECT_TRUE(tenant->controller().empty());
}

TEST(ServerFuse, GroupRejectFallsBackToSequentialDecisions) {
  Server server({});
  Client client = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(status_of(round_trip(server, client,
                                 hello_request("fb", kFlagBatchFuse))),
            NetStatus::Ok);

  // Together the pair overloads (U = 0.6 + 0.9 > 1); sequentially the
  // first fits and the second is rejected. The fused group reject must
  // fall back to exactly the sequential outcome.
  const Task fits = tk(6, 10, 10);
  const Task hog = tk(9, 10, 10);
  client.send(admit_request(fits));
  client.send(admit_request(hog));
  pump(server);

  const NetResponse r1 = client.receive();
  const NetResponse r2 = client.receive();
  EXPECT_EQ(status_of(r1), NetStatus::Ok);
  EXPECT_EQ(status_of(r2), NetStatus::Rejected);

  AdmissionController twin;
  EXPECT_TRUE(twin.try_admit(fits).admitted);
  EXPECT_FALSE(twin.try_admit(hog).admitted);
  Tenant* tenant = server.tenants().find("fb");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->controller().size(), 1u);
}

// ------------------------------------------------------- differential

/// The tentpole acceptance test: a churn trace served over the socket
/// must produce bit-identical decisions — admitted flags, TaskIds,
/// settling rungs, removal counts — and an identical final store
/// header (epoch excluded) to the same trace replayed through an
/// in-process controller, *including across a server kill+recover
/// mid-trace* (per-tenant snapshot + journal, ids stable).
TEST(ServerDifferential, SocketMatchesInProcessAcrossRestart) {
  const std::string dir = temp_dir();
  ServerOptions opts;
  opts.tenants.data_dir = dir;
  opts.tenants.checkpoint_every = 64;  // exercise rotate() mid-trace

  ChurnConfig churn;
  churn.events = 600;
  churn.group_probability = 0.2;
  churn.pool_utilization = 0.9;
  Rng rng(20050308);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);

  AdmissionController twin;  // same defaults as TenantOptions.admission
  std::unordered_map<std::uint64_t, std::vector<TaskId>> live;

  auto server = std::make_unique<Server>(opts);
  const std::uint16_t port = server->port();
  std::thread loop([&server] { server->run(); });
  auto client =
      std::make_unique<Client>(Client::connect("127.0.0.1", port));
  ASSERT_EQ(status_of(client->hello("diff")), NetStatus::Ok);

  std::uint64_t served = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    // Kill the server a third of the way in; recover on a fresh one.
    if (i == trace.size() / 3) {
      client->close();
      server->stop();
      loop.join();
      server.reset();

      server = std::make_unique<Server>(opts);
      loop = std::thread([&server] { server->run(); });
      client = std::make_unique<Client>(
          Client::connect("127.0.0.1", server->port()));
      const NetResponse h = client->hello("diff");
      ASSERT_EQ(status_of(h), NetStatus::Ok);
      EXPECT_GT(h.lsn, 0u);  // the journal window survived the restart
    }

    const TraceEvent& ev = trace[i];
    switch (ev.op) {
      case TraceOp::Arrive: {
        const NetResponse resp =
            client->call(admit_request(ev.task));
        const AdmissionDecision d = twin.try_admit(ev.task);
        ASSERT_EQ(status_of(resp) == NetStatus::Ok, d.admitted)
            << "event " << i;
        ASSERT_EQ(resp.rung, static_cast<std::uint8_t>(d.rung))
            << "event " << i;
        if (d.admitted) {
          ASSERT_EQ(resp.id, d.id) << "event " << i;
          live.emplace(ev.key, std::vector<TaskId>{d.id});
        }
        ++served;
        break;
      }
      case TraceOp::ArriveGroup: {
        NetRequest req;
        req.hdr.op = static_cast<std::uint8_t>(NetOp::AdmitGroup);
        req.group = ev.group;
        const NetResponse resp = client->call(std::move(req));
        const GroupDecision d = twin.admit_group(ev.group);
        ASSERT_EQ(status_of(resp) == NetStatus::Ok, d.admitted)
            << "event " << i;
        if (d.admitted) {
          ASSERT_EQ(resp.ids, d.ids) << "event " << i;
          live.emplace(ev.key, d.ids);
        }
        ++served;
        break;
      }
      case TraceOp::Depart: {
        const auto it = live.find(ev.key);
        if (it == live.end()) break;
        NetRequest req;
        req.hdr.op = static_cast<std::uint8_t>(NetOp::RemoveGroup);
        req.ids = it->second;
        const NetResponse resp = client->call(std::move(req));
        const std::size_t removed = twin.remove_group(it->second);
        ASSERT_EQ(resp.removed, removed) << "event " << i;
        live.erase(it);
        ++served;
        break;
      }
      case TraceOp::Crash:
        break;
    }
  }
  ASSERT_GT(served, 0u);

  // Final store header and running stats, epoch excluded (recovery and
  // checkpoint cycles restart epochs without changing state).
  NetRequest sreq;
  sreq.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
  const NetResponse s = client->call(std::move(sreq));
  const StoreHeader a = s.stats;
  const StoreHeader b = twin.demand_header();
  EXPECT_EQ(a.residents, b.residents);
  EXPECT_EQ(a.constrained, b.constrained);
  EXPECT_EQ(a.live_checkpoints, b.live_checkpoints);
  EXPECT_EQ(a.dead_checkpoints, b.dead_checkpoints);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.cert_ratio, b.cert_ratio);
  EXPECT_EQ(s.stats_json, twin.stats().to_json());

  client->close();
  server->stop();
  loop.join();
  server.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace edfkit::net
