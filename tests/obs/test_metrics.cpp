/// \file test_metrics.cpp
/// MetricsRegistry: log2 bucket arithmetic, null-handle no-ops,
/// multi-shard aggregation, exporter formats, and a concurrent
/// writers-vs-reader stress with exact final totals (run under TSan in
/// CI — every hot-path access is a relaxed atomic by contract).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace edfkit::obs {
namespace {

TEST(ObsBuckets, BucketOfBoundaries) {
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  // Powers of two open a new bucket; their predecessors close one.
  for (std::size_t k = 1; k < 38; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    EXPECT_EQ(bucket_of(p), k + 1) << "v=2^" << k;
    EXPECT_EQ(bucket_of(p - 1), k) << "v=2^" << k << "-1";
  }
  // Everything >= 2^38 lands in the overflow bucket.
  EXPECT_EQ(bucket_of(std::uint64_t{1} << 38), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(ObsBuckets, LoHiRoundTrip) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(bucket_of(bucket_lo(i)), i) << "bucket " << i;
    if (i + 1 < kHistogramBuckets) {
      EXPECT_EQ(bucket_of(bucket_hi(i) - 1), i) << "bucket " << i;
      EXPECT_EQ(bucket_of(bucket_hi(i)), i + 1) << "bucket " << i;
    }
  }
}

TEST(ObsRegistry, CountersAggregateAcrossHandles) {
  MetricsRegistry reg;
  const Counter a = reg.counter("x");
  const Counter b = reg.counter("x");  // same cells
  a.add();
  b.add(4);
  EXPECT_EQ(reg.counter_value("x"), 5u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
}

TEST(ObsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  const Gauge g = reg.gauge("load");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(reg.gauge_value("load"), 0.75);
}

TEST(ObsRegistry, HistogramSnapshotCountsPerBucket) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("ns");
  h.record(0);
  h.record(1);
  h.record(1);
  h.record(1000);  // bit_width 10 -> bucket 10
  const HistogramSnapshot s = reg.histogram_snapshot("ns");
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[bucket_of(1000)], 1u);
  EXPECT_GT(s.approx_sum, 0.0);
}

TEST(ObsRegistry, DisabledRegistryHandsOutNullHandles) {
  MetricsRegistry reg(false);
  EXPECT_FALSE(reg.enabled());
  const Counter c = reg.counter("x");
  const Gauge g = reg.gauge("y");
  const Histogram h = reg.histogram("z");
  EXPECT_FALSE(c.attached());
  EXPECT_FALSE(g.attached());
  EXPECT_FALSE(h.attached());
  c.add(10);
  g.set(1.0);
  h.record(5);
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_TRUE(reg.names().empty());
}

TEST(ObsRegistry, DefaultConstructedHandlesAreNoOps) {
  const Counter c;
  const Histogram h;
  const Gauge g;
  c.add();
  h.record(1);
  g.set(1.0);  // must not crash
  EXPECT_FALSE(c.attached());
}

TEST(ObsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("admits_total").add(3);
  reg.gauge("load").set(0.5);
  const Histogram h = reg.histogram("decision_ns");
  h.record(1);
  h.record(3);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE edfkit_admits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("edfkit_admits_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE edfkit_load gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE edfkit_decision_ns histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" sees one sample, le="3" both.
  EXPECT_NE(text.find("edfkit_decision_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("edfkit_decision_ns_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("edfkit_decision_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("edfkit_decision_ns_count 2"), std::string::npos);
}

TEST(ObsRegistry, JsonExport) {
  MetricsRegistry reg;
  reg.counter("c").add(7);
  reg.histogram("h").record(9);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos);
  // Only occupied buckets are emitted, with their [lo, hi) bounds.
  EXPECT_NE(json.find("{\"lo\":8,\"hi\":16,\"count\":1}"),
            std::string::npos);
}

/// Torn-read invariant under concurrency: N writer threads hammer one
/// counter and one histogram while a reader continuously aggregates;
/// every intermediate read is <= the true total, and the final read is
/// exact. More threads than write shards, so shard reuse is exercised.
TEST(ObsRegistry, ConcurrentWritersExactTotals) {
  MetricsRegistry reg;
  const Counter c = reg.counter("stress_total");
  const Histogram h = reg.histogram("stress_ns");
  constexpr int kThreads = 2 * static_cast<int>(kWriteShards);
  constexpr std::uint64_t kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t seen = reg.counter_value("stress_total");
      EXPECT_LE(seen, kThreads * kPerThread);
      const HistogramSnapshot s = reg.histogram_snapshot("stress_ns");
      EXPECT_LE(s.count, kThreads * kPerThread);
      (void)reg.to_prometheus();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(i + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(reg.counter_value("stress_total"), kThreads * kPerThread);
  const HistogramSnapshot s = reg.histogram_snapshot("stress_ns");
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t sum = 0;
  for (const std::uint64_t b : s.buckets) sum += b;
  EXPECT_EQ(sum, s.count);  // every sample landed in exactly one bucket
}

/// Concurrent registration: many threads registering overlapping names
/// must converge on one cell set per name.
TEST(ObsRegistry, ConcurrentRegistration) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("shared_" + std::to_string(i % 10)).add();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    total += reg.counter_value("shared_" + std::to_string(i));
  }
  EXPECT_EQ(total, 800u);
}

}  // namespace
}  // namespace edfkit::obs
