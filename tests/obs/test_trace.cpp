/// \file test_trace.cpp
/// Flight recorder: pack/unpack fidelity, ring wraparound, zero-capacity
/// no-ops, multi-shard capture, and the seqlock torn-read invariant —
/// a reader racing the single writer must only ever observe records
/// that are internally self-consistent (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace edfkit::obs {
namespace {

DecisionTrace full_trace() {
  DecisionTrace t;
  t.sequence = 0x1122334455667788ull;
  t.task_id = 42;
  t.group_size = 5;
  t.refinements = 3;
  t.segments_walked = 17;
  t.segments_fast_forwarded = 23;
  t.admitted = true;
  t.cert_cover = true;
  t.rollback = true;
  t.rung = 2;
  t.rungs_entered = 0b0111;
  t.rung_ns = {10, 20, 30, 0};
  t.total_ns = 60;
  return t;
}

TEST(ObsTrace, PackUnpackRoundTrip) {
  const DecisionTrace t = full_trace();
  std::array<std::uint64_t, kTraceSlotWords> w{};
  pack_trace(t, w);
  const DecisionTrace u = unpack_trace(w);
  EXPECT_EQ(u.sequence, t.sequence);
  EXPECT_EQ(u.task_id, t.task_id);
  EXPECT_EQ(u.group_size, t.group_size);
  EXPECT_EQ(u.refinements, t.refinements);
  EXPECT_EQ(u.segments_walked, t.segments_walked);
  EXPECT_EQ(u.segments_fast_forwarded, t.segments_fast_forwarded);
  EXPECT_EQ(u.admitted, t.admitted);
  EXPECT_EQ(u.cert_cover, t.cert_cover);
  EXPECT_EQ(u.rollback, t.rollback);
  EXPECT_EQ(u.rung, t.rung);
  EXPECT_EQ(u.rungs_entered, t.rungs_entered);
  EXPECT_EQ(u.rung_ns, t.rung_ns);
  EXPECT_EQ(u.total_ns, t.total_ns);
}

TEST(ObsTrace, RungNames) {
  EXPECT_STREQ(rung_name(0), "structural");
  EXPECT_STREQ(rung_name(1), "utilization");
  EXPECT_STREQ(rung_name(2), "approximate");
  EXPECT_STREQ(rung_name(3), "exact");
}

TEST(ObsTrace, RingCapturesOldestFirst) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    DecisionTrace t;
    t.sequence = i;
    ring.push(t);
  }
  EXPECT_EQ(ring.pushed(), 5u);
  std::vector<DecisionTrace> out;
  EXPECT_EQ(ring.capture(out), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].sequence, i + 1);
  }
}

TEST(ObsTrace, RingWrapsAroundKeepingNewest) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    DecisionTrace t;
    t.sequence = i;
    ring.push(t);
  }
  std::vector<DecisionTrace> out;
  EXPECT_EQ(ring.capture(out), 4u);
  // The retained window is the 4 most recent, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].sequence, 7 + i);
  }
}

TEST(ObsTrace, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(1).capacity(), 1u);
}

TEST(ObsTrace, ZeroCapacityDisablesRing) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  DecisionTrace t;
  t.sequence = 1;
  ring.push(t);  // no-op, must not crash
  std::vector<DecisionTrace> out;
  EXPECT_EQ(ring.capture(out), 0u);
  EXPECT_EQ(ring.pushed(), 0u);
}

TEST(ObsTrace, FlightRecorderTagsShards) {
  FlightRecorder rec(3, 8);
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.shards(), 3u);
  EXPECT_EQ(rec.ring(3), nullptr);
  for (std::size_t s = 0; s < 3; ++s) {
    DecisionTrace t;
    t.sequence = 100 + s;
    rec.ring(s)->push(t);
  }
  std::vector<DecisionTrace> out;
  EXPECT_EQ(rec.capture_all(out), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(out[s].shard, s);
    EXPECT_EQ(out[s].sequence, 100 + s);
  }
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"shards\":3"), std::string::npos);
  EXPECT_NE(json.find("\"captured\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sequence\":101"), std::string::npos);
}

TEST(ObsTrace, DisabledFlightRecorder) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.ring(0), nullptr);
  std::vector<DecisionTrace> out;
  EXPECT_EQ(rec.capture_all(out), 0u);
}

/// Derive every field of a record deterministically from its sequence,
/// so a reader can prove a captured record was not torn mid-copy.
DecisionTrace self_consistent(std::uint64_t seq) {
  DecisionTrace t;
  t.sequence = seq;
  t.task_id = seq * 0x9E3779B97F4A7C15ull;
  t.group_size = static_cast<std::uint32_t>(seq % 7);
  t.refinements = static_cast<std::uint32_t>(seq % 5);
  t.segments_walked = seq ^ 0xABCDull;
  t.segments_fast_forwarded = ~seq;
  t.admitted = (seq % 2) == 0;
  t.cert_cover = (seq % 3) == 0;
  t.rollback = (seq % 11) == 0;
  t.rung = static_cast<std::uint8_t>(seq % kTraceRungs);
  t.rungs_entered = static_cast<std::uint8_t>(1 + (seq % 15));
  for (std::size_t r = 0; r < kTraceRungs; ++r) {
    t.rung_ns[r] = seq + r;
  }
  t.total_ns = seq * 4 + 6;  // = sum of rung_ns
  return t;
}

void expect_self_consistent(const DecisionTrace& got) {
  const DecisionTrace want = self_consistent(got.sequence);
  ASSERT_EQ(got.task_id, want.task_id) << "seq " << got.sequence;
  ASSERT_EQ(got.group_size, want.group_size);
  ASSERT_EQ(got.refinements, want.refinements);
  ASSERT_EQ(got.segments_walked, want.segments_walked);
  ASSERT_EQ(got.segments_fast_forwarded, want.segments_fast_forwarded);
  ASSERT_EQ(got.admitted, want.admitted);
  ASSERT_EQ(got.cert_cover, want.cert_cover);
  ASSERT_EQ(got.rollback, want.rollback);
  ASSERT_EQ(got.rung, want.rung);
  ASSERT_EQ(got.rungs_entered, want.rungs_entered);
  ASSERT_EQ(got.rung_ns, want.rung_ns);
  ASSERT_EQ(got.total_ns, want.total_ns);
}

/// The seqlock contract: concurrent capture() during a push storm never
/// yields a torn record — torn or lapped slots are skipped, and what
/// does come out is bit-exact and in order.
TEST(ObsTrace, ConcurrentCaptureNeverTearsRecords) {
  TraceRing ring(64);
  constexpr std::uint64_t kPushes = 200000;

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<DecisionTrace> out;
      while (!done.load(std::memory_order_relaxed)) {
        out.clear();
        (void)ring.capture(out);
        std::uint64_t prev = 0;
        for (const DecisionTrace& t : out) {
          expect_self_consistent(t);
          ASSERT_GT(t.sequence, prev);  // strictly increasing window
          prev = t.sequence;
        }
      }
    });
  }

  for (std::uint64_t i = 1; i <= kPushes; ++i) {
    ring.push(self_consistent(i));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Quiesced capture is complete: exactly the last 64 pushes.
  std::vector<DecisionTrace> out;
  EXPECT_EQ(ring.capture(out), 64u);
  EXPECT_EQ(out.front().sequence, kPushes - 63);
  EXPECT_EQ(out.back().sequence, kPushes);
}

/// Multi-shard concurrent aggregation: one writer per shard, a reader
/// running whole-recorder captures — per-shard order and shard tags
/// must survive the merge.
TEST(ObsTrace, ConcurrentMultiShardCapture) {
  constexpr std::size_t kShards = 4;
  FlightRecorder rec(kShards, 32);
  constexpr std::uint64_t kPerShard = 50000;

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::vector<DecisionTrace> out;
    while (!done.load(std::memory_order_relaxed)) {
      out.clear();
      (void)rec.capture_all(out);
      std::array<std::uint64_t, kShards> prev{};
      for (const DecisionTrace& t : out) {
        ASSERT_LT(t.shard, kShards);
        expect_self_consistent(t);
        ASSERT_GT(t.sequence, prev[t.shard]);
        prev[t.shard] = t.sequence;
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&, s] {
      TraceRing* const ring = rec.ring(s);
      for (std::uint64_t i = 1; i <= kPerShard; ++i) {
        // Disjoint sequence ranges per shard keep self-consistency
        // checkable after the shard tag is attached.
        ring->push(self_consistent(s * 10 * kPerShard + i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  std::vector<DecisionTrace> out;
  EXPECT_EQ(rec.capture_all(out), kShards * 32u);
}

}  // namespace
}  // namespace edfkit::obs
