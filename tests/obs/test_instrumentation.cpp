/// \file test_instrumentation.cpp
/// End-to-end instrumentation invariants, replay-driven: the ladder
/// rung counters must account for every decision, captured decision
/// traces must reconcile bucket-for-bucket with the registry's rung
/// histograms, journal counters must match journal histograms, and the
/// stats JSON surfaces must carry the new fields.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "admission/controller.hpp"
#include "admission/engine.hpp"
#include "admission/replay.hpp"
#include "helpers.hpp"
#include "obs/obs.hpp"

namespace edfkit {
namespace {

std::vector<TraceEvent> churn(std::uint64_t seed, std::size_t events) {
  ChurnConfig cfg;
  cfg.warmup_arrivals = 30;
  cfg.events = events;
  cfg.pool_utilization = 0.99;  // ride the admission boundary
  cfg.family = ChurnConfig::Family::Fixed;
  cfg.fixed_tasks = 30;
  cfg.group_probability = 0.3;
  cfg.group_size = 4;
  Rng rng(seed);
  return generate_churn_trace(rng, cfg);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "edfkit_obs_" + name + "_" +
         std::to_string(::getpid());
}

/// Every decision settles on exactly one rung: the per-rung settled
/// counters must partition the decision count, and agree with the
/// controller's own by_rung stats and the replay's bookkeeping.
TEST(ObsInstrumentation, RungCountersSumToTotalDecisions) {
  obs::Obs obs;
  AdmissionController ctl;
  ctl.attach_obs(&obs);
  const std::vector<TraceEvent> trace = churn(11, 800);
  const ReplayStats rs = replay_trace(trace, ctl, &obs);

  const obs::MetricsRegistry& reg = obs.registry();
  std::uint64_t settled = 0;
  std::uint64_t decisions = 0;
  for (std::size_t r = 0; r < kAdmissionRungs; ++r) {
    const std::string rn = std::to_string(r);
    const std::uint64_t s =
        reg.counter_value("admission_rung" + rn + "_settled_total");
    EXPECT_EQ(s, rs.by_rung[r]) << "rung " << r;
    EXPECT_EQ(s, ctl.stats().by_rung[r]) << "rung " << r;
    // A rung can only settle what it attempted, and every decision
    // attempts rung 0.
    EXPECT_LE(s, reg.counter_value("admission_rung" + rn +
                                   "_attempts_total"));
    settled += s;
    decisions += rs.by_rung[r];
  }
  EXPECT_GT(decisions, 0u);
  EXPECT_EQ(settled, decisions);
  EXPECT_EQ(reg.counter_value("admission_rung0_attempts_total"),
            decisions);
  // Admits + rejects also partition the decisions.
  EXPECT_EQ(reg.counter_value("admission_admits_total") +
                reg.counter_value("admission_rejects_total"),
            decisions);
  // One decision_ns sample per decision.
  EXPECT_EQ(reg.histogram_snapshot("admission_decision_ns").count,
            decisions);
  // The replay driver folded its own counters in.
  EXPECT_EQ(reg.counter_value("replay_events_total"), trace.size());
  EXPECT_EQ(reg.counter_value("replay_arrivals_total"), rs.arrivals);
  EXPECT_EQ(reg.counter_value("replay_departures_total"), rs.departures);
}

/// The acceptance-criteria reconciliation: rebuild the per-rung latency
/// histograms from the captured decision traces alone and compare
/// bucket-for-bucket with what the registry aggregated. Capacity
/// exceeds the decision count, so nothing wrapped and the two views
/// describe the same population.
TEST(ObsInstrumentation, TracesReconcileWithRungHistograms) {
  obs::ObsConfig cfg;
  cfg.trace_capacity = 1 << 14;
  obs::Obs obs(cfg);
  AdmissionController ctl;
  ctl.attach_obs(&obs);
  const std::vector<TraceEvent> trace = churn(23, 600);
  const ReplayStats rs = replay_trace(trace, ctl, &obs);
  std::uint64_t decisions = 0;
  for (const std::uint64_t n : rs.by_rung) decisions += n;

  std::vector<obs::DecisionTrace> records;
  ASSERT_EQ(obs.recorder().capture_all(records), decisions);

  // Rebuild: a rung's histogram samples are exactly the rung_ns of the
  // records that entered that rung (the probe records one sample per
  // entered rung per decision).
  std::array<std::array<std::uint64_t, obs::kHistogramBuckets>,
             kAdmissionRungs>
      rebuilt{};
  std::array<std::uint64_t, obs::kHistogramBuckets> rebuilt_total{};
  for (const obs::DecisionTrace& t : records) {
    for (std::size_t r = 0; r < kAdmissionRungs; ++r) {
      if (((t.rungs_entered >> r) & 1u) != 0) {
        ++rebuilt[r][obs::bucket_of(t.rung_ns[r])];
      }
    }
    ++rebuilt_total[obs::bucket_of(t.total_ns)];
  }

  const obs::MetricsRegistry& reg = obs.registry();
  for (std::size_t r = 0; r < kAdmissionRungs; ++r) {
    const obs::HistogramSnapshot s = reg.histogram_snapshot(
        "admission_rung" + std::to_string(r) + "_ns");
    EXPECT_EQ(s.buckets, rebuilt[r]) << "rung " << r;
  }
  EXPECT_EQ(reg.histogram_snapshot("admission_decision_ns").buckets,
            rebuilt_total);

  // Per-record sanity: rung times of entered rungs sum to the total
  // (the probe's clock never leaves a gap), and the settled rung was
  // entered.
  for (const obs::DecisionTrace& t : records) {
    std::uint64_t sum = 0;
    for (std::size_t r = 0; r < kAdmissionRungs; ++r) sum += t.rung_ns[r];
    EXPECT_EQ(sum, t.total_ns);
    EXPECT_NE((t.rungs_entered >> t.rung) & 1u, 0u);
  }
}

TEST(ObsInstrumentation, StatsToJsonCarriesTheNewFields) {
  AdmissionController ctl;
  (void)ctl.try_admit(testing::tk(1, 10, 10));
  const std::string aj = ctl.stats().to_json();
  EXPECT_NE(aj.find("\"arrivals\":1"), std::string::npos);
  EXPECT_NE(aj.find("\"admitted\":1"), std::string::npos);
  EXPECT_NE(aj.find("\"by_rung\""), std::string::npos);
  EXPECT_NE(aj.find("\"total_effort\""), std::string::npos);

  EngineOptions opts;
  opts.shards = 2;
  opts.workers = 1;
  AdmissionEngine engine(opts);
  (void)engine.admit(testing::tk(1, 10, 10));
  const EngineStats es = engine.stats();
  const std::string ej = es.to_json();
  EXPECT_NE(ej.find("\"admission\":"), std::string::npos);
  EXPECT_NE(ej.find("\"stats_read_retries\":"), std::string::npos);
  EXPECT_NE(ej.find("\"shards\":["), std::string::npos);
}

/// stats_into reports the cumulative lapped-reader retry count; an
/// uncontended read stream stays at zero, and the engine metrics
/// mirror whatever the total is.
TEST(ObsInstrumentation, EngineStatsReadRetriesAccumulate) {
  obs::Obs obs;
  EngineOptions opts;
  opts.shards = 2;
  opts.workers = 1;
  AdmissionEngine engine(opts);
  engine.attach_obs(&obs);
  const std::vector<TraceEvent> trace = churn(31, 300);
  const ReplayStats rs = replay_trace(trace, engine, &obs);
  const EngineStats es = engine.stats();
  EXPECT_EQ(es.stats_read_retries,
            obs.registry().counter_value("engine_stats_read_retries_total"));

  // Engine placement counters account for the decision stream: every
  // decision is either a single or a group placement request, and
  // rejects are the subset no shard accepted.
  std::uint64_t decisions = 0;
  for (const std::uint64_t n : rs.by_rung) decisions += n;
  const obs::MetricsRegistry& reg = obs.registry();
  EXPECT_EQ(reg.counter_value("engine_placements_total") +
                reg.counter_value("engine_group_placements_total"),
            decisions);
  EXPECT_LE(reg.counter_value("engine_placement_rejects_total"), decisions);
  EXPECT_EQ(reg.histogram_snapshot("engine_placement_ns").count, decisions);
}

/// Journal counters and histograms describe the same appends: one
/// append_ns sample per journal_appends_total, and the WAL sees one
/// append per non-crash trace event.
TEST(ObsInstrumentation, JournalAppendHistogramMatchesCounter) {
  obs::Obs obs;
  AdmissionController ctl;
  ctl.attach_obs(&obs);
  const std::string wal = temp_path("journal.wal");
  std::remove(wal.c_str());
  ReplayPersistence persistence;
  persistence.journal_path = wal;
  const std::vector<TraceEvent> trace = churn(47, 200);
  (void)replay_trace(trace, ctl, persistence, &obs);

  const obs::MetricsRegistry& reg = obs.registry();
  const std::uint64_t appends = reg.counter_value("journal_appends_total");
  EXPECT_GT(appends, 0u);
  EXPECT_EQ(reg.histogram_snapshot("journal_append_ns").count, appends);
  EXPECT_EQ(reg.histogram_snapshot("journal_fsync_ns").count,
            reg.counter_value("journal_fsyncs_total"));
  std::remove(wal.c_str());
}

/// ObsConfig::disabled() must leave consumers fully detached: no
/// metrics recorded, no traces captured, decisions unchanged.
TEST(ObsInstrumentation, DisabledObsRecordsNothing) {
  obs::Obs off(obs::ObsConfig::disabled());
  AdmissionController instrumented;
  instrumented.attach_obs(&off);
  AdmissionController bare;
  const std::vector<TraceEvent> trace = churn(59, 300);
  const ReplayStats a = replay_trace(trace, instrumented, &off);
  const ReplayStats b = replay_trace(trace, bare);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.by_rung, b.by_rung);
  EXPECT_TRUE(off.registry().names().empty());
  std::vector<obs::DecisionTrace> records;
  EXPECT_EQ(off.recorder().capture_all(records), 0u);
}

}  // namespace
}  // namespace edfkit
