#include "model/event_stream.hpp"

#include <gtest/gtest.h>

#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(EventStream, PeriodicEta) {
  const EventStream s = EventStream::periodic(10);
  EXPECT_EQ(s.eta(-1), 0);
  EXPECT_EQ(s.eta(0), 1);   // window endpoints inclusive at offset 0
  EXPECT_EQ(s.eta(9), 1);
  EXPECT_EQ(s.eta(10), 2);
  EXPECT_EQ(s.eta(95), 10);
}

TEST(EventStream, BurstyEta) {
  // 3 events 5 apart, repeating every 100.
  const EventStream s = EventStream::bursty(100, 3, 5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.eta(0), 1);
  EXPECT_EQ(s.eta(5), 2);
  EXPECT_EQ(s.eta(10), 3);
  EXPECT_EQ(s.eta(99), 3);
  EXPECT_EQ(s.eta(100), 4);
  EXPECT_EQ(s.eta(110), 6);
}

TEST(EventStream, BurstyFactoryValidates) {
  EXPECT_THROW((void)EventStream::bursty(10, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)EventStream::bursty(10, 3, 0), std::invalid_argument);
  EXPECT_THROW((void)EventStream::bursty(10, 3, 5), std::invalid_argument);
}

TEST(EventStream, OneShotTuple) {
  EventStream s;
  s.add(EventTuple{kTimeInfinity, 25});
  EXPECT_EQ(s.eta(24), 0);
  EXPECT_EQ(s.eta(25), 1);
  EXPECT_EQ(s.eta(1'000'000), 1);
}

TEST(EventStream, InvalidTupleRejected) {
  EventStream s;
  EXPECT_THROW(s.add(EventTuple{0, 0}), std::invalid_argument);
  EXPECT_THROW(s.add(EventTuple{10, -1}), std::invalid_argument);
}

TEST(EventStreamTask, DbfShiftsEtaByDeadline) {
  EventStreamTask et{EventStream::bursty(100, 2, 10), 3, 20, "x"};
  EXPECT_EQ(et.dbf(19), 0);
  EXPECT_EQ(et.dbf(20), 3);   // first event's deadline
  EXPECT_EQ(et.dbf(30), 6);   // second event (offset 10) + 20
  EXPECT_EQ(et.dbf(120), 9);  // next period's first event
}

TEST(EventStreamTask, ValidateRejectsBadTasks) {
  EventStreamTask bad{EventStream{}, 1, 1, "b"};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EventStreamTask bad2{EventStream::periodic(10), 0, 1, "b"};
  EXPECT_THROW(bad2.validate(), std::invalid_argument);
}

TEST(Expand, OneTaskPerTuple) {
  std::vector<EventStreamTask> streams;
  streams.push_back({EventStream::bursty(100, 3, 5), 2, 30, "burst"});
  streams.push_back({EventStream::periodic(50), 1, 40, "per"});
  const TaskSet ts = expand(streams);
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts[0].deadline, 30);  // offset 0
  EXPECT_EQ(ts[1].deadline, 35);  // offset 5
  EXPECT_EQ(ts[2].deadline, 40);  // offset 10
  EXPECT_EQ(ts[3].deadline, 40);
  EXPECT_EQ(ts[0].period, 100);
}

/// The expansion must preserve the demand bound function exactly — this
/// is what makes every sporadic feasibility test applicable to event
/// streams (paper §2/§3.6).
class ExpandEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExpandEquivalence, DbfPreservedOnRandomStreams) {
  Rng rng(GetParam());
  std::vector<EventStreamTask> streams;
  const int n = rng.uniform_int(1, 5);
  for (int i = 0; i < n; ++i) {
    const Time period = rng.uniform_time(20, 200);
    const Time burst = rng.uniform_time(1, 4);
    const Time gap = (burst > 1)
                         ? rng.uniform_time(1, (period - 1) / burst)
                         : 1;
    EventStreamTask et{
        (burst > 1) ? EventStream::bursty(period, burst, gap)
                    : EventStream::periodic(period),
        rng.uniform_time(1, 10), rng.uniform_time(1, 150), ""};
    streams.push_back(std::move(et));
  }
  const TaskSet expanded = expand(streams);
  for (Time i = 0; i <= 600; ++i) {
    Time direct = 0;
    for (const auto& et : streams) direct += et.dbf(i);
    EXPECT_EQ(direct, dbf(expanded, i)) << "interval " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpandEquivalence,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace edfkit
