#include "model/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "../helpers.hpp"

namespace edfkit {
namespace {

TEST(Io, ParsesBasicFile) {
  const TaskSet ts = parse_task_set(R"(
    # a comment
    task a 1 4 8
    task b 2 6 12   # trailing comment

    task c 3 20 24
  )");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].name, "a");
  EXPECT_EQ(ts[1].wcet, 2);
  EXPECT_EQ(ts[2].period, 24);
}

TEST(Io, ParsesJitterAndInf) {
  const TaskSet ts = parse_task_set("task a 1 10 inf\ntask b 2 9 20 3\n");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_TRUE(is_time_infinite(ts[0].period));
  EXPECT_EQ(ts[1].jitter, 3);
}

TEST(Io, ErrorsCarryLineNumbers) {
  try {
    (void)parse_task_set("task a 1 4 8\nbogus line here\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Io, RejectsMalformedFields) {
  EXPECT_THROW((void)parse_task_set("task a one 4 8\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_task_set("task a 1 4\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_task_set("task a 1 4 8 0 extra\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_task_set("task a 0 4 8\n"),  // invalid task
               std::invalid_argument);
}

TEST(Io, RoundTripPreservesTasks) {
  const TaskSet original = testing::set_of(
      {testing::tk(1, 4, 8), testing::tk(2, 6, 12), testing::tk(3, 20, 24)});
  const TaskSet reparsed = parse_task_set(format_task_set(original));
  EXPECT_EQ(original, reparsed);
}

TEST(Io, RoundTripPreservesInfAndJitter) {
  Task a = testing::tk(1, 10, kTimeInfinity);
  Task b = testing::tk(2, 9, 20);
  b.jitter = 3;
  const TaskSet original({a, b});
  const TaskSet reparsed = parse_task_set(format_task_set(original));
  EXPECT_EQ(original, reparsed);
}

TEST(Io, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "edfkit_io_test.txt";
  const TaskSet original =
      testing::set_of({testing::tk(5, 40, 50), testing::tk(8, 80, 100)});
  save_task_set(path, original);
  const TaskSet loaded = load_task_set(path);
  EXPECT_EQ(original, loaded);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)load_task_set("/no/such/file.txt"), std::runtime_error);
}

TEST(Io, UnnamedTasksGetGeneratedNamesOnWrite) {
  const TaskSet ts = testing::set_of({testing::tk(1, 2, 3)});
  const std::string text = format_task_set(ts);
  EXPECT_NE(text.find("task t0 1 2 3"), std::string::npos);
}

}  // namespace
}  // namespace edfkit
