#include "model/task.hpp"

#include <gtest/gtest.h>

namespace edfkit {
namespace {

TEST(Task, FactoryValidates) {
  const Task t = make_task(2, 8, 10, "x");
  EXPECT_EQ(t.wcet, 2);
  EXPECT_EQ(t.deadline, 8);
  EXPECT_EQ(t.period, 10);
  EXPECT_EQ(t.name, "x");
  EXPECT_THROW((void)make_task(0, 8, 10), std::invalid_argument);
  EXPECT_THROW((void)make_task(2, 0, 10), std::invalid_argument);
  EXPECT_THROW((void)make_task(2, 8, 0), std::invalid_argument);
}

TEST(Task, ImplicitFactory) {
  const Task t = make_implicit_task(3, 12);
  EXPECT_EQ(t.deadline, t.period);
}

TEST(Task, JitterShrinksEffectiveDeadline) {
  Task t = make_task(2, 10, 20);
  EXPECT_EQ(t.effective_deadline(), 10);
  t.jitter = 3;
  EXPECT_EQ(t.effective_deadline(), 7);
  t.jitter = 10;  // J >= D is invalid
  EXPECT_FALSE(t.valid());
}

TEST(Task, UtilizationExact) {
  const Task t = make_task(3, 10, 12);
  EXPECT_EQ(t.utilization().to_string(), "1/4");
  EXPECT_DOUBLE_EQ(t.utilization_double(), 0.25);
}

TEST(Task, OneShotUtilizationIsZero) {
  Task t = make_task(5, 10, kTimeInfinity);
  EXPECT_TRUE(t.utilization().is_zero());
}

TEST(Task, JobDeadlines) {
  const Task t = make_task(1, 7, 10);
  EXPECT_EQ(t.job_deadline(0), 7);
  EXPECT_EQ(t.job_deadline(1), 17);
  EXPECT_EQ(t.job_deadline(5), 57);
}

TEST(Task, NextDeadlineAfterIsStrictSuccessor) {
  const Task t = make_task(1, 7, 10);
  EXPECT_EQ(t.next_deadline_after(0), 7);
  EXPECT_EQ(t.next_deadline_after(6), 7);
  EXPECT_EQ(t.next_deadline_after(7), 17);   // strictly greater
  EXPECT_EQ(t.next_deadline_after(16), 17);
  EXPECT_EQ(t.next_deadline_after(17), 27);
  EXPECT_EQ(t.next_deadline_after(1000), 1007);
}

TEST(Task, NextDeadlineAfterEnumeratesAllDeadlines) {
  const Task t = make_task(2, 13, 9);  // D > T is legal
  Time point = -1;
  for (Time k = 0; k < 50; ++k) {
    point = t.next_deadline_after(point);
    EXPECT_EQ(point, t.job_deadline(k));
  }
}

TEST(Task, JobsWithDeadlineWithin) {
  const Task t = make_task(1, 7, 10);
  EXPECT_EQ(t.jobs_with_deadline_within(6), -1);
  EXPECT_EQ(t.jobs_with_deadline_within(7), 0);
  EXPECT_EQ(t.jobs_with_deadline_within(16), 0);
  EXPECT_EQ(t.jobs_with_deadline_within(17), 1);
  EXPECT_EQ(t.jobs_with_deadline_within(107), 10);
}

TEST(Task, ToStringFormats) {
  EXPECT_EQ(make_task(1, 2, 3, "a").to_string(), "a(C=1,D=2,T=3)");
  EXPECT_EQ(make_task(1, 2, kTimeInfinity).to_string(), "task(C=1,D=2,T=inf)");
  Task j = make_task(1, 5, 9, "j");
  j.jitter = 2;
  EXPECT_EQ(j.to_string(), "j(C=1,D=5,T=9,J=2)");
}

TEST(Task, EqualityIgnoresName) {
  const Task a = make_task(1, 2, 3, "a");
  const Task b = make_task(1, 2, 3, "b");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == make_task(1, 2, 4));
}

}  // namespace
}  // namespace edfkit
