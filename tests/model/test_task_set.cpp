#include "model/task_set.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(TaskSet, AggregatesBasics) {
  const TaskSet ts = set_of({tk(1, 4, 8), tk(2, 6, 12), tk(3, 20, 24)});
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.total_wcet(), 6);
  EXPECT_EQ(ts.max_deadline(), 20);
  EXPECT_EQ(ts.min_deadline(), 4);
  EXPECT_EQ(ts.max_period(), 24);
  EXPECT_EQ(ts.min_period(), 8);
  EXPECT_EQ(ts.hyperperiod(), 24);
  // 1/8 + 2/12 + 3/24 = 3/24 + 4/24 + 3/24 = 5/12
  EXPECT_EQ(ts.utilization().to_string(), "5/12");
}

TEST(TaskSet, EmptySet) {
  const TaskSet ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_TRUE(ts.utilization().is_zero());
  EXPECT_EQ(ts.max_deadline(), 0);
  EXPECT_EQ(ts.min_deadline(), kTimeInfinity);
  EXPECT_EQ(ts.hyperperiod(), 1);
}

TEST(TaskSet, AddValidatesAndInvalidatesCaches) {
  TaskSet ts;
  ts.add(tk(1, 4, 8));
  EXPECT_EQ(ts.utilization().to_string(), "1/8");
  ts.add(tk(1, 8, 8));
  EXPECT_EQ(ts.utilization().to_string(), "1/4");  // cache refreshed
  Task bad = tk(0, 1, 1);
  EXPECT_THROW(ts.add(bad), std::invalid_argument);
}

TEST(TaskSet, ConstructorRejectsInvalidTask) {
  EXPECT_THROW(TaskSet({tk(1, 2, 3), tk(0, 1, 1)}), std::invalid_argument);
}

TEST(TaskSet, HyperperiodSaturatesOnCoprimeGiants) {
  const TaskSet ts =
      set_of({tk(1, 999'999'937, 999'999'937),   // large prime
              tk(1, 999'999'893, 999'999'893),   // another large prime
              tk(1, 999'999'761, 999'999'761)});
  EXPECT_TRUE(is_time_infinite(ts.hyperperiod()));
}

TEST(TaskSet, ConstrainedDetection) {
  EXPECT_TRUE(set_of({tk(1, 8, 8), tk(1, 3, 9)}).constrained_deadlines());
  EXPECT_FALSE(set_of({tk(1, 10, 8)}).constrained_deadlines());
}

TEST(TaskSet, ByDeadlineIsStableSorted) {
  const TaskSet ts = set_of({tk(1, 9, 10), tk(2, 3, 10), tk(3, 9, 20)});
  const auto& idx = ts.by_deadline();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);  // ties keep original order (stable)
  EXPECT_EQ(idx[2], 2u);
  const TaskSet sorted = ts.sorted_by_deadline();
  EXPECT_EQ(sorted[0].deadline, 3);
  EXPECT_EQ(sorted[1].deadline, 9);
  EXPECT_EQ(sorted[2].deadline, 9);
}

TEST(TaskSet, ScaledMultipliesEverything) {
  TaskSet ts = set_of({tk(1, 4, 8)});
  const TaskSet s = ts.scaled(10);
  EXPECT_EQ(s[0].wcet, 10);
  EXPECT_EQ(s[0].deadline, 40);
  EXPECT_EQ(s[0].period, 80);
  // Utilization is invariant under scaling.
  EXPECT_EQ(s.utilization().to_string(), ts.utilization().to_string());
  EXPECT_THROW((void)ts.scaled(0), std::invalid_argument);
}

TEST(TaskSet, EqualityAndToString) {
  const TaskSet a = set_of({tk(1, 2, 3)});
  const TaskSet b = set_of({tk(1, 2, 3)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a.to_string().find("n=1"), std::string::npos);
}

TEST(TaskSet, UtilizationStaysExactForManySharedFactorPeriods) {
  TaskSet ts;
  for (int i = 0; i < 100; ++i) {
    ts.add(tk(1, 50 + i % 20, 100 + 10 * (i % 10)));
  }
  EXPECT_TRUE(ts.utilization().exact());
}

}  // namespace
}  // namespace edfkit
