#include "admission/replay.hpp"

#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"

namespace edfkit {
namespace {

TEST(ChurnTrace, ValidatesConfig) {
  ChurnConfig bad;
  bad.depart_probability = 1.5;
  Rng rng(1);
  EXPECT_THROW(generate_churn_trace(rng, bad), std::invalid_argument);
  bad = ChurnConfig{};
  bad.pool_utilization = 0.0;
  EXPECT_THROW(generate_churn_trace(rng, bad), std::invalid_argument);
}

TEST(ChurnTrace, DeterministicAndWellFormed) {
  ChurnConfig cfg;
  cfg.events = 300;
  cfg.warmup_arrivals = 10;
  cfg.family = ChurnConfig::Family::Small;
  Rng a(99);
  Rng b(99);
  const auto t1 = generate_churn_trace(a, cfg);
  const auto t2 = generate_churn_trace(b, cfg);
  ASSERT_EQ(t1.size(), t2.size());
  EXPECT_EQ(t1.size(), cfg.events + cfg.warmup_arrivals);
  std::size_t arrivals = 0;
  std::set<std::uint64_t> seen;
  std::set<std::uint64_t> departed;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].op, t2[i].op);
    EXPECT_EQ(t1[i].key, t2[i].key);
    if (t1[i].op == TraceOp::Arrive) {
      ++arrivals;
      EXPECT_TRUE(t1[i].task == t2[i].task);
      EXPECT_TRUE(seen.insert(t1[i].key).second) << "duplicate arrival key";
    } else {
      // Departures reference an earlier arrival, at most once.
      EXPECT_TRUE(seen.count(t1[i].key) == 1);
      EXPECT_TRUE(departed.insert(t1[i].key).second);
    }
  }
  EXPECT_GE(arrivals, cfg.warmup_arrivals);
  // Warmup is all arrivals.
  for (std::size_t i = 0; i < cfg.warmup_arrivals; ++i) {
    EXPECT_EQ(t1[i].op, TraceOp::Arrive);
  }
}

TEST(Replay, ControllerStatsAddUp) {
  ChurnConfig cfg;
  cfg.events = 400;
  cfg.family = ChurnConfig::Family::Small;
  cfg.pool_utilization = 0.9;
  Rng rng(7);
  const auto trace = generate_churn_trace(rng, cfg);

  AdmissionController ctl;
  const ReplayStats s = replay_trace(trace, ctl);
  EXPECT_EQ(s.admitted + s.rejected, s.arrivals);
  std::uint64_t by_rung = 0;
  for (const std::uint64_t c : s.by_rung) by_rung += c;
  EXPECT_EQ(by_rung, s.arrivals);
  // Resident accounting: admitted minus applied departures.
  EXPECT_EQ(ctl.size(),
            s.admitted - (s.departures - s.skipped_departures));
  EXPECT_GE(s.peak_resident, ctl.size());
  EXPECT_GT(s.peak_utilization, 0.0);
  // The invariant after the whole trace.
  EXPECT_TRUE(ctl.empty() || ctl.analyze_resident().feasible());
}

TEST(Replay, EngineMatchesAccounting) {
  ChurnConfig cfg;
  cfg.events = 300;
  cfg.family = ChurnConfig::Family::Small;
  Rng rng(13);
  const auto trace = generate_churn_trace(rng, cfg);

  EngineOptions opts;
  opts.shards = 2;
  opts.workers = 1;
  AdmissionEngine engine(opts);
  const ReplayStats s = replay_trace(trace, engine);
  EXPECT_EQ(s.admitted + s.rejected, s.arrivals);
  EXPECT_EQ(engine.stats().resident,
            s.admitted - (s.departures - s.skipped_departures));
  const std::string rendered = s.to_string();
  EXPECT_NE(rendered.find("arrivals="), std::string::npos);
}

TEST(Replay, FixedFamilyHonorsTaskCount) {
  ChurnConfig cfg;
  cfg.events = 0;
  cfg.warmup_arrivals = 12;
  cfg.family = ChurnConfig::Family::Fixed;
  cfg.fixed_tasks = 12;
  cfg.pool_utilization = 0.8;
  Rng rng(3);
  const auto trace = generate_churn_trace(rng, cfg);
  ASSERT_EQ(trace.size(), 12u);
  double u = 0.0;
  for (const TraceEvent& ev : trace) u += ev.task.utilization_double();
  EXPECT_NEAR(u, 0.8, 0.05);  // one generated set, flattened in order
}

}  // namespace
}  // namespace edfkit
