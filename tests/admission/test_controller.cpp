#include "admission/controller.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "admission/replay.hpp"
#include "core/analyzer.hpp"
#include "helpers.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(AdmissionController, EmptyAndSingleTask) {
  AdmissionController ctl;
  EXPECT_TRUE(ctl.empty());
  EXPECT_TRUE(ctl.analyze_resident().feasible() || ctl.empty());

  const AdmissionDecision d = ctl.try_admit(tk(2, 10, 20));
  EXPECT_TRUE(d.admitted);
  EXPECT_NE(d.id, kInvalidTaskId);
  EXPECT_EQ(ctl.size(), 1u);
  EXPECT_TRUE(ctl.analyze_resident().feasible());
  EXPECT_TRUE(ctl.verify_consistency());
}

TEST(AdmissionController, RejectsInfeasibleSingleTask) {
  AdmissionController ctl;
  // C > D with C <= T: infeasible although U < 1.
  const AdmissionDecision d = ctl.try_admit(tk(8, 4, 100));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.analysis.verdict, Verdict::Infeasible);
  EXPECT_TRUE(ctl.empty());  // state restored
  EXPECT_TRUE(ctl.verify_consistency());
}

TEST(AdmissionController, UtilizationBoundaryExactlyOne) {
  AdmissionController ctl;
  // Implicit deadlines: U <= 1 is exact; fill to exactly 1.
  EXPECT_TRUE(ctl.try_admit(tk(1, 2, 2)).admitted);
  EXPECT_TRUE(ctl.try_admit(tk(1, 4, 4)).admitted);
  const AdmissionDecision full = ctl.try_admit(tk(1, 4, 4));  // U == 1
  EXPECT_TRUE(full.admitted);
  // Anything more is provably infeasible (U > 1), settled at rung 1.
  const AdmissionDecision over = ctl.try_admit(tk(1, 1000, 1000));
  EXPECT_FALSE(over.admitted);
  EXPECT_EQ(over.rung, AdmissionRung::Utilization);
  EXPECT_EQ(over.analysis.verdict, Verdict::Infeasible);
  // Departures restore admissibility.
  EXPECT_TRUE(ctl.remove(full.id));
  EXPECT_TRUE(ctl.try_admit(tk(1, 1000, 1000)).admitted);
}

TEST(AdmissionController, PolicyGates) {
  AdmissionOptions opts;
  opts.max_tasks = 2;
  AdmissionController ctl(opts);
  EXPECT_TRUE(ctl.try_admit(tk(1, 10, 100)).admitted);
  EXPECT_TRUE(ctl.try_admit(tk(1, 10, 100)).admitted);
  const AdmissionDecision d = ctl.try_admit(tk(1, 10, 100));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.rung, AdmissionRung::Structural);
  EXPECT_EQ(d.analysis.verdict, Verdict::Unknown);  // policy, not analysis

  AdmissionOptions capped;
  capped.utilization_cap = 0.5;
  AdmissionController ctl2(capped);
  EXPECT_TRUE(ctl2.try_admit(tk(2, 10, 10)).admitted);   // U 0.2
  EXPECT_TRUE(ctl2.try_admit(tk(2, 10, 10)).admitted);   // U 0.4
  const AdmissionDecision over = ctl2.try_admit(tk(2, 10, 10));
  EXPECT_FALSE(over.admitted);
  EXPECT_EQ(over.rung, AdmissionRung::Structural);
}

TEST(AdmissionController, SkipExactModeStaysSound) {
  AdmissionOptions opts;
  opts.skip_exact = true;
  AdmissionController ctl(opts);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const TaskSet pool = draw_small_set(rng, 0.95);
    for (const Task& t : pool) {
      const AdmissionDecision d = ctl.try_admit(t);
      if (d.admitted) {
        EXPECT_NE(d.rung, AdmissionRung::Exact);
      } else {
        // Rejections without an infeasibility proof report Unknown.
        EXPECT_TRUE(d.analysis.verdict == Verdict::Unknown ||
                    d.analysis.verdict == Verdict::Infeasible);
      }
    }
  }
  // The standing invariant holds regardless of the weaker ladder.
  EXPECT_TRUE(ctl.empty() || ctl.analyze_resident().feasible());
}

TEST(AdmissionController, RejectsNonExactFallbackKind) {
  AdmissionOptions opts;
  opts.exact_fallback = TestKind::Devi;  // sufficient only
  EXPECT_THROW(AdmissionController{opts}, std::invalid_argument);
}

TEST(AdmissionController, StatsAreConsistent) {
  AdmissionController ctl;
  Rng rng(17);
  const TaskSet pool = draw_small_set(rng, 0.9);
  std::vector<TaskId> ids;
  for (const Task& t : pool) {
    const AdmissionDecision d = ctl.try_admit(t);
    if (d.admitted) ids.push_back(d.id);
  }
  for (const TaskId id : ids) EXPECT_TRUE(ctl.remove(id));
  const AdmissionStats& s = ctl.stats();
  EXPECT_EQ(s.arrivals, pool.size());
  EXPECT_EQ(s.admitted + s.rejected, s.arrivals);
  EXPECT_EQ(s.removals, ids.size());
  std::uint64_t by_rung = 0;
  for (const std::uint64_t c : s.by_rung) by_rung += c;
  EXPECT_EQ(by_rung, s.arrivals);
  EXPECT_TRUE(ctl.empty());
}

/// The headline property (issue acceptance criterion): on randomized
/// churn traces, every single admission verdict agrees with a
/// from-scratch exact analysis of the widened set, and the resident set
/// stays provably feasible after every operation.
class ControllerChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerChurnTest, VerdictsMatchFromScratchAfterEveryOp) {
  Rng rng(GetParam());
  ChurnConfig cfg;
  cfg.events = 250;  // x4 seeds = 1000+ randomized ops overall
  cfg.warmup_arrivals = 6;
  cfg.depart_probability = 0.45;
  cfg.family = ChurnConfig::Family::Small;
  cfg.pool_utilization = 0.93;
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, cfg);

  AdmissionController ctl;
  std::unordered_map<std::uint64_t, TaskId> resident;
  std::size_t checked = 0;
  for (const TraceEvent& ev : trace) {
    if (ev.op == TraceOp::Arrive) {
      // From-scratch oracle on the widened set, before mutating.
      TaskSet widened = ctl.snapshot();
      widened.add(ev.task);
      const bool oracle =
          run_test(widened, TestKind::ProcessorDemand).feasible();
      const AdmissionDecision d = ctl.try_admit(ev.task);
      ASSERT_EQ(d.admitted, oracle)
          << "op " << checked << " task " << ev.task.to_string() << "\n"
          << widened.to_string();
      if (d.admitted) resident.emplace(ev.key, d.id);
    } else {
      const auto it = resident.find(ev.key);
      if (it != resident.end()) {
        ASSERT_TRUE(ctl.remove(it->second));
        resident.erase(it);
      }
    }
    // The resident set must stay provably feasible throughout.
    if (!ctl.empty()) {
      ASSERT_TRUE(ctl.analyze_resident(TestKind::ProcessorDemand)
                      .feasible())
          << "op " << checked;
    }
    if (checked % 25 == 0) {
      ASSERT_TRUE(ctl.verify_consistency()) << "op " << checked;
    }
    ++checked;
  }
  EXPECT_GE(checked, 250u);
  EXPECT_GT(ctl.stats().admitted, 0u);
  EXPECT_GT(ctl.stats().removals, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerChurnTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(AdmissionController, CertificateCarryingDecisions) {
  AdmissionOptions opts;
  opts.return_certificate = true;
  AdmissionController ctl(opts);

  // Admit: a feasibility certificate over the widened resident set,
  // independently re-checkable against a client-side copy of it.
  const AdmissionDecision a = ctl.try_admit(tk(2, 8, 10));
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(a.certificate.present());
  const CertificateCheck ok = verify(ctl.snapshot(), a.certificate);
  EXPECT_TRUE(ok.valid) << ok.reason;

  // Group admit: one certificate for the whole widened set.
  const std::vector<Task> group = {tk(1, 10, 20), tk(2, 20, 40)};
  const GroupDecision g = ctl.admit_group(group);
  ASSERT_TRUE(g.admitted);
  ASSERT_TRUE(g.certificate.present());
  EXPECT_TRUE(verify(ctl.snapshot(), g.certificate).valid);

  // Proven reject: an infeasibility certificate, verifying against the
  // widened set the caller offered (residents + rejected arrival) —
  // and against nothing else.
  const AdmissionDecision r = ctl.try_admit(tk(9, 5, 100));
  ASSERT_FALSE(r.admitted);
  ASSERT_EQ(r.analysis.verdict, Verdict::Infeasible);
  ASSERT_TRUE(r.certificate.present());
  TaskSet widened = ctl.snapshot();
  widened.add(tk(9, 5, 100));
  EXPECT_TRUE(verify(widened, r.certificate).valid);
  EXPECT_FALSE(verify(ctl.snapshot(), r.certificate).valid);

  // Policy rejects prove nothing and carry nothing.
  AdmissionOptions capped = opts;
  capped.max_tasks = 1;
  AdmissionController small(capped);
  ASSERT_TRUE(small.try_admit(tk(1, 10, 10)).admitted);
  const AdmissionDecision p = small.try_admit(tk(1, 10, 10));
  EXPECT_FALSE(p.admitted);
  EXPECT_FALSE(p.certificate.present());

  // Off (the default), decisions stay certificate-free.
  AdmissionController plain;
  EXPECT_FALSE(plain.try_admit(tk(2, 8, 10)).certificate.present());
}

TEST(AdmissionLadder, TestSelectionIsDiscoverable) {
  AdmissionOptions opts;
  const std::vector<TestKind> kinds = admission_ladder_tests(opts);
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], TestKind::LiuLayland);
  EXPECT_EQ(kinds[1], TestKind::Chakraborty);
  EXPECT_EQ(kinds[2], opts.exact_fallback);
  opts.skip_exact = true;
  EXPECT_EQ(admission_ladder_tests(opts).size(), 2u);
}

}  // namespace
}  // namespace edfkit
