#include "admission/incremental_dbf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/chakraborty.hpp"
#include "core/analyzer.hpp"
#include "demand/dbf.hpp"
#include "helpers.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(IncrementalDemand, EmptySetFitsAndIsFullySlack) {
  IncrementalDemand d(0.25);
  EXPECT_TRUE(d.empty());
  const DemandCheck c = d.check();
  EXPECT_TRUE(c.fits);
  EXPECT_EQ(d.certificate(), kFixedPointScale);
  EXPECT_EQ(d.utilization_class(), UtilizationClass::BelowOne);
}

TEST(IncrementalDemand, AddRemoveRoundTripsAggregates) {
  IncrementalDemand d(0.25);
  const TaskId a = d.add(tk(1, 4, 8));
  const TaskId b = d.add(tk(2, 6, 12));
  const TaskId c = d.add(tk(3, 10, 20));
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.matches_rebuild());
  EXPECT_TRUE(d.remove(b));
  EXPECT_FALSE(d.remove(b));  // already gone
  EXPECT_TRUE(d.matches_rebuild());
  EXPECT_TRUE(d.remove(a));
  EXPECT_TRUE(d.remove(c));
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.checkpoint_count(), 0u);
  EXPECT_TRUE(d.matches_rebuild());
}

TEST(IncrementalDemand, FindAndLevels) {
  IncrementalDemand d(0.5);  // k = 2
  const TaskId id = d.add(tk(1, 5, 10));
  ASSERT_NE(d.find(id), nullptr);
  EXPECT_EQ(d.find(id)->wcet, 1);
  EXPECT_EQ(d.level_of(id), 2);
  EXPECT_EQ(d.find(12345), nullptr);
  EXPECT_EQ(d.level_of(12345), 0);
}

TEST(IncrementalDemand, ExactDbfMatchesOfflineDbf) {
  IncrementalDemand d(0.25);
  d.add(tk(1, 4, 8));
  d.add(tk(2, 6, 12));
  const TaskSet ts = d.snapshot();
  for (const Time i : {1, 4, 6, 8, 12, 16, 24, 100}) {
    EXPECT_EQ(d.exact_dbf_at(i), dbf(ts, i)) << "I=" << i;
  }
}

TEST(IncrementalDemand, UtilizationClassificationMatchesOffline) {
  IncrementalDemand d(0.25);
  d.add(tk(1, 4, 8));
  d.add(tk(3, 8, 8));
  EXPECT_EQ(d.utilization_class(), classify_utilization(d.snapshot()));
  // Push to exactly 1: 1/8 + 3/8 + 4/8 == 1.
  const TaskId id = d.add(tk(4, 8, 8));
  EXPECT_EQ(d.utilization_class(), UtilizationClass::ExactlyOne);
  EXPECT_EQ(classify_utilization(d.snapshot()), UtilizationClass::ExactlyOne);
  // And over.
  d.add(tk(1, 100, 100));
  EXPECT_EQ(d.utilization_class(), UtilizationClass::AboveOne);
  EXPECT_FALSE(d.check().fits);
  d.remove(id);
  EXPECT_NE(d.utilization_class(), UtilizationClass::AboveOne);
}

TEST(IncrementalDemand, BudgetZeroMatchesChakraborty) {
  // With no refinement budget the scan's verdict semantics equal the
  // epsilon-approximate test at level k on the same set.
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const double u = 0.6 + 0.01 * (trial % 40);
    const TaskSet ts = draw_small_set(rng, u);
    for (const double eps : {1.0, 0.5, 0.25, 0.1}) {
      IncrementalDemand d(eps);
      for (const Task& t : ts) d.add(t);
      const DemandCheck c = d.check(/*max_revisions=*/0);
      const ChakrabortyResult ref = chakraborty_test(ts, eps);
      EXPECT_EQ(c.fits, ref.base.feasible())
          << "eps=" << eps << " trial=" << trial << "\n"
          << ts.to_string();
    }
  }
}

TEST(IncrementalDemand, RefinedCheckVerdictsAreExact) {
  // With refinement, fits is a feasibility proof and overflow_proof an
  // infeasibility proof — both must agree with the exact offline test.
  Rng rng(7);
  int proofs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const double u = 0.8 + 0.003 * trial;
    const TaskSet ts = draw_small_set(rng, u);
    IncrementalDemand d(0.25);
    for (const Task& t : ts) d.add(t);
    const DemandCheck c = d.check();
    const bool feasible = run_test(ts, TestKind::ProcessorDemand).feasible();
    if (c.fits) {
      EXPECT_TRUE(feasible) << ts.to_string();
      ++proofs;
    } else if (c.overflow_proof) {
      EXPECT_FALSE(feasible) << ts.to_string();
      EXPECT_GT(dbf(ts, c.witness), c.witness);
      ++proofs;
    }
  }
  // The refined scan decides a healthy share outright (the rest exceed
  // the refinement ceiling on these coarse-period sets and escalate).
  EXPECT_GT(proofs, 10);
}

TEST(IncrementalDemand, CertificateAdmitsAreSound) {
  Rng rng(11);
  int covered = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const TaskSet ts = draw_small_set(rng, 0.6);
    IncrementalDemand d(0.25);
    for (const Task& t : ts) d.add(t);
    if (!d.check().fits) continue;
    const TaskSet extra = draw_small_set(rng, 0.2);
    for (const Task& t : extra) {
      if (!d.certificate_covers(t)) continue;
      ++covered;
      d.add(t);
      // The fast-path admit must preserve provable feasibility.
      EXPECT_TRUE(run_test(d.snapshot(), TestKind::ProcessorDemand)
                      .feasible())
          << d.snapshot().to_string();
    }
  }
  EXPECT_GT(covered, 5);  // the fast path actually fires
}

TEST(IncrementalDemand, MatchesRebuildUnderRandomChurn) {
  Rng rng(23);
  IncrementalDemand d(0.25);
  std::vector<TaskId> live;
  std::vector<Task> pool;
  for (int i = 0; i < 400; ++i) {
    if (pool.empty()) {
      const TaskSet ts = draw_small_set(rng, 0.9);
      pool.assign(ts.begin(), ts.end());
    }
    if (!live.empty() && rng.bernoulli(0.45)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_time(0, static_cast<Time>(live.size()) - 1));
      ASSERT_TRUE(d.remove(live[pick]));
      live[pick] = live.back();
      live.pop_back();
    } else {
      live.push_back(d.add(pool.back()));
      pool.pop_back();
    }
    (void)d.check();  // exercises refinement state as well
    if (i % 16 == 0) {
      ASSERT_TRUE(d.matches_rebuild()) << "op " << i;
    }
  }
}

TEST(IncrementalDemand, OneShotTasksAreSingleCorners) {
  IncrementalDemand d(0.25);
  Task one_shot = tk(2, 10, kTimeInfinity);
  d.add(one_shot);
  EXPECT_EQ(d.checkpoint_count(), 1u);
  EXPECT_TRUE(d.check().fits);
  EXPECT_EQ(d.utilization_double(), 0.0);
  // A second one: demand 4 at I = 10 <= 10 still fits.
  d.add(one_shot);
  EXPECT_TRUE(d.check().fits);
  // Eleven of them overflow interval 10.
  for (int i = 0; i < 9; ++i) d.add(one_shot);
  const DemandCheck c = d.check();
  EXPECT_FALSE(c.fits);
  EXPECT_TRUE(c.overflow_proof);  // one-shots carry no approximation
  EXPECT_EQ(c.witness, 10);
}

TEST(IncrementalDemand, InvalidEpsilonAndTasksThrow) {
  EXPECT_THROW(IncrementalDemand(0.0), std::invalid_argument);
  EXPECT_THROW(IncrementalDemand(1.5), std::invalid_argument);
  IncrementalDemand d(0.25);
  Task bad = tk(0, 4, 8);  // C must be > 0
  EXPECT_THROW(d.add(bad), std::invalid_argument);
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace edfkit
