#include "admission/engine.hpp"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "helpers.hpp"

namespace edfkit {
namespace {

using testing::tk;

TEST(AdmissionEngine, RejectsZeroShards) {
  EngineOptions opts;
  opts.shards = 0;
  EXPECT_THROW(AdmissionEngine{opts}, std::invalid_argument);
}

TEST(AdmissionEngine, FirstFitFillsLowShardsFirst) {
  EngineOptions opts;
  opts.shards = 3;
  opts.workers = 1;
  opts.placement = PlacementPolicy::FirstFit;
  AdmissionEngine engine(opts);
  // Each shard holds exactly two of these (U = 0.5 each).
  for (int i = 0; i < 4; ++i) {
    const PlacementDecision d = engine.admit(tk(5, 10, 10));
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.id.shard, static_cast<std::uint32_t>(i / 2));
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.shard_resident[0], 2u);
  EXPECT_EQ(s.shard_resident[1], 2u);
  EXPECT_EQ(s.shard_resident[2], 0u);
}

TEST(AdmissionEngine, WorstFitBalances) {
  EngineOptions opts;
  opts.shards = 4;
  opts.workers = 1;
  opts.placement = PlacementPolicy::WorstFit;
  AdmissionEngine engine(opts);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.admit(tk(1, 10, 10)).admitted);
  }
  const EngineStats s = engine.stats();
  for (std::size_t i = 0; i < engine.shards(); ++i) {
    EXPECT_EQ(s.shard_resident[i], 2u) << "shard " << i;
  }
}

TEST(AdmissionEngine, CapacityScalesWithShards) {
  // Four tasks of U = 0.6 cannot share fewer than 4 processors.
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    EngineOptions opts;
    opts.shards = shards;
    opts.workers = 1;
    AdmissionEngine engine(opts);
    std::size_t admitted = 0;
    for (int i = 0; i < 4; ++i) {
      const PlacementDecision d = engine.admit(tk(6, 10, 10));
      admitted += d.admitted ? 1 : 0;
      if (!d.admitted) {
        EXPECT_EQ(d.shards_tried, shards);  // tried everywhere
      }
    }
    EXPECT_EQ(admitted, shards);
  }
}

TEST(AdmissionEngine, RemoveAndInvalidIds) {
  EngineOptions opts;
  opts.shards = 2;
  opts.workers = 1;
  AdmissionEngine engine(opts);
  const PlacementDecision d = engine.admit(tk(1, 5, 10));
  ASSERT_TRUE(d.admitted);
  EXPECT_TRUE(engine.remove(d.id));
  EXPECT_FALSE(engine.remove(d.id));  // gone
  EXPECT_FALSE(engine.remove(GlobalTaskId{}));
  EXPECT_FALSE(engine.remove(GlobalTaskId{99, 1}));  // bad shard
  EXPECT_EQ(engine.stats().resident, 0u);
}

TEST(AdmissionEngine, SubmitRunsOnWorkerPool) {
  EngineOptions opts;
  opts.shards = 2;
  opts.workers = 2;
  AdmissionEngine engine(opts);
  std::vector<std::future<PlacementDecision>> futs;
  for (int i = 0; i < 16; ++i) futs.push_back(engine.submit(tk(1, 20, 40)));
  std::size_t admitted = 0;
  for (auto& f : futs) admitted += f.get().admitted ? 1 : 0;
  EXPECT_EQ(admitted, 16u);
  EXPECT_EQ(engine.stats().resident, 16u);
}

TEST(AdmissionEngine, ConcurrentChurnKeepsEveryShardFeasible) {
  EngineOptions opts;
  opts.shards = 4;
  opts.workers = 2;
  opts.placement = PlacementPolicy::WorstFit;
  AdmissionEngine engine(opts);

  const auto client = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<GlobalTaskId> mine;
    for (int i = 0; i < 200; ++i) {
      if (!mine.empty() && rng.bernoulli(0.4)) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_time(0, static_cast<Time>(mine.size()) - 1));
        engine.remove(mine[pick]);
        mine[pick] = mine.back();
        mine.pop_back();
      } else {
        const Time period = rng.uniform_time(10, 100);
        const Time deadline = rng.uniform_time(5, period);
        const Time wcet = rng.uniform_time(1, std::max<Time>(1, deadline / 4));
        const PlacementDecision d = engine.admit(tk(wcet, deadline, period));
        if (d.admitted) mine.push_back(d.id);
      }
    }
  };
  {
    std::vector<std::thread> clients;
    for (std::uint64_t s = 1; s <= 4; ++s) clients.emplace_back(client, s);
    for (std::thread& c : clients) c.join();
  }

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.admission.arrivals, s.admission.admitted + s.admission.rejected);
  std::size_t resident = 0;
  for (std::size_t i = 0; i < engine.shards(); ++i) {
    resident += s.shard_resident[i];
    // The partitioned invariant: every shard's resident set is provably
    // EDF-feasible under an exact from-scratch test. (QPA: the resident
    // utilization can end up arbitrarily close to 1, where the plain
    // processor-demand test's bound explodes.)
    const FeasibilityResult r = engine.analyze_shard(i, TestKind::Qpa);
    EXPECT_TRUE(engine.shard_snapshot(i).empty() || r.feasible())
        << "shard " << i;
  }
  EXPECT_EQ(resident, s.resident);
}

}  // namespace
}  // namespace edfkit
