/// \file test_pipeline.cpp
/// The high-throughput admission pipeline (PR 4): tombstoned removals
/// vs eager compaction (differential fuzz), batch group admission
/// (atomicity, rollback bit-identity, per-task-loop agreement), and the
/// epoch-versioned wait-free read paths (engine stats headers + the
/// demand store header) under a real writer — run this under the
/// EDFKIT_SANITIZE configuration for TSan-grade confidence.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "admission/engine.hpp"
#include "admission/replay.hpp"
#include "demand/task_view.hpp"
#include "helpers.hpp"
#include "query/query.hpp"

namespace edfkit {
namespace {

using testing::tk;

// ---------------------------------------------------------- tombstones

/// Twin stores that differ only in compaction policy must agree on
/// every verdict and match their own rebuilds through churn at U -> 1.
/// EDFKIT_FUZZ_MULT deepens the churn (the nightly long-fuzz workflow
/// runs 20x); a divergence drops a repro artifact for upload.
TEST(Tombstones, DifferentialFuzzAgainstEagerCompaction) {
  Rng rng(20050307);
  IncrementalDemand eager(0.25, /*use_slack_index=*/true,
                          /*eager_compaction=*/true);
  IncrementalDemand lazy(0.25, /*use_slack_index=*/true,
                         /*eager_compaction=*/false);
  eager.set_index_thresholds(0, 0);
  lazy.set_index_thresholds(0, 0);
  std::vector<std::pair<TaskId, TaskId>> live;
  std::vector<Task> pool;
  std::size_t max_dead = 0;
  const int ops =
      1200 * static_cast<int>(testing::fuzz_multiplier());
  for (int op = 0; op < ops; ++op) {
    if (pool.empty()) {
      const TaskSet ts = draw_small_set(rng, 0.99);  // ride the boundary
      pool.assign(ts.begin(), ts.end());
    }
    if (!live.empty() && rng.bernoulli(0.45)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_time(0, static_cast<Time>(live.size()) - 1));
      ASSERT_TRUE(eager.remove(live[pick].first));
      ASSERT_TRUE(lazy.remove(live[pick].second));
      live[pick] = live.back();
      live.pop_back();
    } else {
      live.emplace_back(eager.add(pool.back()), lazy.add(pool.back()));
      pool.pop_back();
    }
    const DemandCheck a = eager.check();
    const DemandCheck b = lazy.check();
    if (a.fits != b.fits || a.overflow_proof != b.overflow_proof) {
      testing::write_fuzz_artifact(
          "tombstone_fuzz_divergence.txt",
          "tombstone-vs-eager divergence\nseed=20050307 op=" +
              std::to_string(op) + " eager.fits=" +
              std::to_string(a.fits) + " lazy.fits=" +
              std::to_string(b.fits) + "\n");
    }
    ASSERT_EQ(a.fits, b.fits) << "op " << op;
    ASSERT_EQ(a.overflow_proof, b.overflow_proof) << "op " << op;
    if (a.overflow_proof) {
      ASSERT_EQ(a.witness, b.witness) << "op " << op;
    }
    ASSERT_EQ(eager.checkpoint_count(), lazy.checkpoint_count())
        << "op " << op;
    EXPECT_EQ(eager.dead_checkpoints(), 0u);  // eager never tombstones
    max_dead = std::max(max_dead, lazy.dead_checkpoints());
    if (op % 64 == 0) {
      ASSERT_TRUE(eager.matches_rebuild()) << "op " << op;
      ASSERT_TRUE(lazy.matches_rebuild()) << "op " << op;
    }
  }
  // Tombstones actually accumulate between compactions (the mechanism
  // is exercised), but deferred compaction keeps them bounded.
  EXPECT_GT(max_dead, 0u);
  EXPECT_LT(max_dead,
            lazy.checkpoint_count() + lazy.dead_checkpoints() + 4096);
}

TEST(Tombstones, ControllerDecisionsIdenticalEitherPolicy) {
  ChurnConfig churn;
  churn.warmup_arrivals = 60;
  churn.events = 1000;
  churn.pool_utilization = 0.99;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = 60;
  Rng rng(7);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);

  AdmissionOptions eager_opts;
  eager_opts.skip_exact = true;
  eager_opts.eager_compaction = true;
  AdmissionOptions lazy_opts = eager_opts;
  lazy_opts.eager_compaction = false;
  AdmissionController eager(eager_opts);
  AdmissionController lazy(lazy_opts);
  const ReplayStats a = replay_trace(trace, eager);
  const ReplayStats b = replay_trace(trace, lazy);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.by_rung, b.by_rung);
  EXPECT_TRUE(eager.verify_consistency());
  EXPECT_TRUE(lazy.verify_consistency());
}

TEST(Tombstones, RemovalBurstDefersThenCompacts) {
  // A drain leaves tombstones rather than memmoving the store; deferred
  // compaction reclaims them, and removing everything empties the live
  // view either way.
  IncrementalDemand d(0.25, /*use_slack_index=*/false);
  Rng rng(3);
  const TaskSet ts = draw_fig8_set(rng, 0.7);
  std::vector<TaskId> ids;
  ids.reserve(ts.size());
  for (const Task& t : ts) ids.push_back(d.add(t));
  ASSERT_TRUE(d.check().fits);
  const std::size_t before = d.checkpoint_count();
  std::size_t seen_dead = 0;
  for (const TaskId id : ids) {
    ASSERT_TRUE(d.remove(id));
    seen_dead = std::max(seen_dead, d.dead_checkpoints());
  }
  EXPECT_GT(before, 0u);
  EXPECT_GT(seen_dead, 0u);  // tombstones appeared mid-burst
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.checkpoint_count(), 0u);  // no live checkpoints remain
  EXPECT_TRUE(d.check().fits);
  EXPECT_TRUE(d.matches_rebuild());
}

// ------------------------------------------------------- group admits

TEST(GroupAdmit, EmptyAndImplicitGroups) {
  AdmissionController ctl;
  const GroupDecision none = ctl.admit_group({});
  EXPECT_TRUE(none.admitted);
  EXPECT_TRUE(none.ids.empty());
  EXPECT_EQ(ctl.size(), 0u);

  // Implicit deadlines at U <= 1: settled by the utilization rung.
  const std::vector<Task> g{tk(1, 10, 10), tk(2, 20, 20), tk(3, 30, 30)};
  const GroupDecision d = ctl.admit_group(g);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.ids.size(), 3u);
  EXPECT_EQ(d.rung, AdmissionRung::Utilization);
  EXPECT_EQ(ctl.size(), 3u);
  EXPECT_EQ(ctl.stats().groups, 2u);
  EXPECT_EQ(ctl.stats().arrivals, 3u);
}

TEST(GroupAdmit, OverUtilizationGroupRejectedWithoutMutation) {
  AdmissionController ctl;
  (void)ctl.admit_group(std::vector<Task>{tk(4, 8, 8)});
  const AdmissionStats pre = ctl.stats();
  // Sum utilization 0.5 + 0.4 + 0.4 > 1: rung-1 infeasibility proof.
  const std::vector<Task> g{tk(4, 10, 10), tk(4, 10, 10)};
  const GroupDecision d = ctl.admit_group(g);
  EXPECT_FALSE(d.admitted);
  EXPECT_TRUE(d.ids.empty());
  EXPECT_EQ(d.rung, AdmissionRung::Utilization);
  EXPECT_EQ(d.analysis.verdict, Verdict::Infeasible);
  EXPECT_EQ(ctl.size(), 1u);
  EXPECT_EQ(ctl.stats().rejected, pre.rejected + 2);
  EXPECT_TRUE(ctl.verify_consistency());
}

TEST(GroupAdmit, RejectionRollbackLeavesStoreBitIdentical) {
  AdmissionOptions opts;
  opts.skip_exact = true;  // force the rollback path on borderline sets
  // Audit mode: also restore refinement levels raised by the failing
  // scan (the default keeps them, like single-task rejects).
  opts.rollback_refinements = true;
  AdmissionController ctl(opts);
  Rng rng(23);
  // Fill from a handful of moderate pools (whatever admits, admits).
  for (int round = 0; round < 6; ++round) {
    const TaskSet ts = draw_small_set(rng, 0.6);
    for (const Task& t : ts) (void)ctl.try_admit(t);
  }
  ASSERT_GT(ctl.size(), 0u);
  ASSERT_TRUE(ctl.verify_consistency());

  // Groups that pass the utilization rung (tiny u) but provably
  // overflow a tight deadline force the tentative-insert + rollback
  // path; drawn groups add variety (any reject must also roll back).
  // The baseline is re-captured per trial: admitted trials
  // legitimately leave learned refinement behind, but a *rejected*
  // group must leave the live store bit-identical.
  int rejections = 0;
  for (int trial = 0; trial < 60 && rejections < 5; ++trial) {
    const TaskSet before = ctl.snapshot();
    const StoreHeader h_before = ctl.demand_header();
    std::vector<Task> g;
    if (trial % 2 == 0) {
      // dbf(6) = 15 > 6 while U stays ~0.015: overflow-proof reject.
      g = {tk(5, 6, 1000), tk(5, 6, 1000), tk(5, 6, 1000)};
    } else {
      const TaskSet extra = draw_small_set(rng, 0.5);
      g.assign(extra.begin(), extra.end());
    }
    const GroupDecision d = ctl.admit_group(g);
    if (d.admitted) {
      // Keep the store roughly where it was for the next trial.
      for (const TaskId id : d.ids) ASSERT_TRUE(ctl.remove(id));
      continue;
    }
    ++rejections;
    const TaskSet after = ctl.snapshot();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].wcet, after[i].wcet) << i;
      EXPECT_EQ(before[i].deadline, after[i].deadline) << i;
      EXPECT_EQ(before[i].period, after[i].period) << i;
    }
    // Live structure identical: counts match (rollback undoes the
    // group's checkpoints *and* any refinement the failing scan
    // performed) and the incremental aggregates still equal a
    // from-scratch rebuild — tombstones left by the rollback are
    // invisible.
    EXPECT_EQ(ctl.demand_header().live_checkpoints,
              h_before.live_checkpoints);
    EXPECT_EQ(ctl.demand_header().residents, h_before.residents);
    ASSERT_TRUE(ctl.verify_consistency());
  }
  EXPECT_GT(rejections, 0);  // the rollback path actually ran

  // Default mode (refinement kept): membership and aggregates still
  // roll back exact-inverse — the store must match its own rebuild and
  // keep the same residents after a rejected group.
  AdmissionOptions fast = opts;
  fast.rollback_refinements = false;
  AdmissionController ctl2(fast);
  for (int round = 0; round < 4; ++round) {
    const TaskSet ts = draw_small_set(rng, 0.6);
    for (const Task& t : ts) (void)ctl2.try_admit(t);
  }
  const std::size_t n_before = ctl2.size();
  const std::vector<Task> overload{tk(5, 6, 1000), tk(5, 6, 1000),
                                   tk(5, 6, 1000)};
  const GroupDecision d = ctl2.admit_group(overload);
  ASSERT_FALSE(d.admitted);
  EXPECT_EQ(ctl2.size(), n_before);
  EXPECT_TRUE(ctl2.verify_consistency());
}

TEST(GroupAdmit, LoggedCheckUndoRestoresRefinementLevels) {
  // Hunt across seeds for a saturated store whose scan actually
  // refines, then assert the logged undo restores every level exactly.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 40 && !exercised; ++seed) {
    IncrementalDemand d(0.25);
    Rng rng(seed);
    std::vector<TaskId> ids;
    const TaskSet ts = draw_small_set(rng, 0.99);  // U <= 1: scans run
    for (const Task& t : ts) ids.push_back(d.add(t));
    std::vector<Time> before;
    before.reserve(ids.size());
    for (const TaskId id : ids) before.push_back(d.level_of(id));
    IncrementalDemand::RefineLog log;
    (void)d.check(1 << 20, &log);
    if (log.empty()) continue;
    exercised = true;
    d.undo_refinements(log);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(d.level_of(ids[i]), before[i]) << "seed " << seed;
    }
    ASSERT_TRUE(d.matches_rebuild()) << "seed " << seed;
  }
  EXPECT_TRUE(exercised) << "no seed triggered refinement";
}

/// The per-task all-or-nothing loop (admit each; roll back on the first
/// reject) is the semantic baseline for admit_group. With the exact
/// rung enabled both must agree decision-for-decision: EDF feasibility
/// is monotone under subsets, so "union feasible" == "every prefix
/// feasible".
TEST(GroupAdmit, AgreesWithPerTaskRollbackLoop) {
  ChurnConfig churn;
  churn.warmup_arrivals = 40;
  churn.events = 300;
  churn.pool_utilization = 0.95;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = 40;
  churn.group_probability = 0.35;
  churn.group_size = 5;
  Rng rng(77);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);

  AdmissionOptions opts;  // full ladder: decisions are exact-backed
  AdmissionController grouped(opts);
  AdmissionController looped(opts);
  std::vector<std::pair<std::uint64_t, std::vector<TaskId>>> g_live;
  std::vector<std::pair<std::uint64_t, std::vector<TaskId>>> l_live;

  const auto depart = [](auto& live, AdmissionController& ctl,
                         std::uint64_t key) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].first != key) continue;
      for (const TaskId id : live[i].second) {
        EXPECT_TRUE(ctl.remove(id));
      }
      live[i] = live.back();
      live.pop_back();
      return;
    }
  };

  for (const TraceEvent& ev : trace) {
    if (ev.op == TraceOp::Depart) {
      depart(g_live, grouped, ev.key);
      depart(l_live, looped, ev.key);
      continue;
    }
    const std::vector<Task> group =
        ev.op == TraceOp::ArriveGroup ? ev.group
                                      : std::vector<Task>{ev.task};
    const GroupDecision gd = grouped.admit_group(group);
    // Per-task baseline: admit in order, roll back on first reject.
    std::vector<TaskId> ids;
    bool all = true;
    for (const Task& t : group) {
      const AdmissionDecision d = looped.try_admit(t);
      if (!d.admitted) {
        all = false;
        break;
      }
      ids.push_back(d.id);
    }
    if (!all) {
      for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
        ASSERT_TRUE(looped.remove(*it));
      }
      ids.clear();
    }
    ASSERT_EQ(gd.admitted, all) << "key " << ev.key;
    if (gd.admitted) {
      g_live.emplace_back(ev.key, gd.ids);
      l_live.emplace_back(ev.key, ids);
    }
  }
  EXPECT_TRUE(grouped.verify_consistency());
  EXPECT_TRUE(looped.verify_consistency());
  EXPECT_GT(grouped.stats().groups, 0u);
}

TEST(GroupAdmit, EnginePlacesGroupOnOneShard) {
  EngineOptions opts;
  opts.shards = 3;
  opts.placement = PlacementPolicy::WorstFit;
  AdmissionEngine engine(opts);
  const std::vector<Task> g{tk(1, 8, 8), tk(2, 16, 16), tk(1, 4, 8)};
  const GroupPlacement p = engine.admit_group(g);
  ASSERT_TRUE(p.admitted);
  ASSERT_EQ(p.ids.size(), 3u);
  for (const GlobalTaskId id : p.ids) {
    EXPECT_EQ(id.shard, p.shard);  // co-scheduled on a single shard
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.admission.groups, 1u);
  EXPECT_EQ(s.resident, 3u);
  for (const GlobalTaskId id : p.ids) EXPECT_TRUE(engine.remove(id));
  EXPECT_EQ(engine.stats().resident, 0u);
}

TEST(GroupAdmit, ReplayDrivesGroupTraces) {
  ChurnConfig churn;
  churn.warmup_arrivals = 20;
  churn.events = 400;
  churn.pool_utilization = 0.9;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = 30;
  churn.group_probability = 0.5;
  churn.group_size = 4;
  Rng rng(123);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);
  AdmissionOptions opts;
  opts.skip_exact = true;
  AdmissionController ctl(opts);
  const ReplayStats stats = replay_trace(trace, ctl);
  EXPECT_GT(stats.groups, 0u);
  EXPECT_EQ(stats.admitted + stats.rejected, stats.arrivals);
  EXPECT_TRUE(ctl.verify_consistency());
  // And through a sharded engine.
  AdmissionEngine engine(EngineOptions{.shards = 2, .admission = opts});
  const ReplayStats estats = replay_trace(trace, engine);
  EXPECT_EQ(estats.admitted + estats.rejected, estats.arrivals);
  EXPECT_GE(estats.admitted, stats.admitted);  // two shards fit more
}

TEST(GroupAdmit, GroupCertificateCoverIsSound) {
  // The read-only group cover simulation must only ever approve groups
  // whose union is provably feasible (it mirrors the sequential
  // cover-then-charge walk the real adds perform).
  Rng rng(31);
  int covered_groups = 0;
  for (int trial = 0; trial < 40; ++trial) {
    IncrementalDemand d(0.25);
    const TaskSet ts = draw_small_set(rng, 0.55);
    for (const Task& t : ts) (void)d.add(t);
    if (!d.check().fits) continue;  // publish a certificate
    // Light long-deadline members plus one drawn task: a group shape
    // the decayed per-region charges can actually cover.
    std::vector<Task> g{tk(1, 400, 400), tk(1, 800, 800)};
    const TaskSet extra = draw_small_set(rng, 0.1);
    if (!extra.empty()) g.push_back(extra[0]);
    if (!d.certificate_covers(std::span<const Task>(g))) continue;
    ++covered_groups;
    std::vector<TaskId> ids;
    d.add_group(g, ids);
    EXPECT_TRUE(run_test(d.resident(), TestKind::ProcessorDemand)
                    .feasible())
        << d.resident().to_string();
  }
  EXPECT_GT(covered_groups, 3);  // the fast path actually fires
}

TEST(GroupAdmit, OverlayQueryMatchesMaterializedUnion) {
  // The query layer's group plumbing: Query::run(base, extra) analyzes
  // resident + candidate group without mutating either, and must agree
  // with the materialized union verdict.
  Rng rng(17);
  const Query q = Query::single(TestKind::ProcessorDemand)
                      .with_certificates(false);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskSet base = draw_small_set(rng, 0.6);
    const TaskSet extra = draw_small_set(rng, 0.5);
    const std::vector<Task> g(extra.begin(), extra.end());
    const Outcome overlay = q.run(base, std::span<const Task>(g));
    std::vector<Task> all(base.begin(), base.end());
    all.insert(all.end(), g.begin(), g.end());
    const Outcome direct = q.run(TaskSet(std::move(all)));
    EXPECT_EQ(overlay.verdict, direct.verdict) << "trial " << trial;
  }
}

TEST(GroupAdmit, TaskViewBatchInsertIsAllOrNothing) {
  TaskView v;
  const std::vector<Task> good{tk(1, 4, 8), tk(2, 6, 12)};
  const std::vector<TaskView::Slot> slots = v.add_batch(good);
  EXPECT_EQ(slots.size(), 2u);
  EXPECT_EQ(v.size(), 2u);
  std::vector<Task> bad{tk(3, 10, 20), tk(0, 4, 8)};  // C == 0 invalid
  EXPECT_THROW((void)v.add_batch(bad), std::invalid_argument);
  EXPECT_EQ(v.size(), 2u);  // untouched: validation precedes insertion
}

// ------------------------------------------------- wait-free read paths

TEST(EpochReads, StoreHeaderReflectsCounters) {
  IncrementalDemand d(0.25);
  const StoreHeader h0 = d.header();
  EXPECT_EQ(h0.residents, 0u);
  EXPECT_EQ(h0.live_checkpoints, 0u);
  const TaskId a = d.add(tk(1, 4, 8));
  (void)d.check();
  StoreHeader h1 = d.header();
  EXPECT_GT(h1.epoch, h0.epoch);  // every mutation publishes
  EXPECT_EQ(h1.residents, 1u);
  EXPECT_EQ(h1.live_checkpoints, d.checkpoint_count());
  EXPECT_GE(h1.cert_ratio, 0.0);  // passing scan published a certificate
  EXPECT_NEAR(h1.utilization, 0.125, 1e-9);
  ASSERT_TRUE(d.remove(a));
  StoreHeader h2 = d.header();
  EXPECT_EQ(h2.residents, 0u);
  EXPECT_EQ(h2.live_checkpoints, 0u);
  EXPECT_EQ(h2.dead_checkpoints, d.dead_checkpoints());
}

TEST(EpochReads, StoreHeaderNeverTearsUnderConcurrentChurn) {
  // One mutator (the documented write-side contract) + hammering
  // readers: every header() must be internally consistent — a torn
  // read would pair counters from different publications. Run under
  // EDFKIT_SANITIZE for TSan-grade checking of the protocol itself.
  IncrementalDemand d(0.25);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  const Time k_ceiling = 4 * d.steps_per_task();  // max corners per task

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const StoreHeader h = d.header();
        // Epochs only advance.
        EXPECT_GE(h.epoch, last_epoch);
        last_epoch = h.epoch;
        // Cross-field invariants of any single publication: a torn
        // read mixing (old counts, new counts) breaks them.
        if (h.residents == 0) {
          EXPECT_EQ(h.live_checkpoints, 0u);
          EXPECT_LT(h.utilization, 1e-9);
        } else {
          EXPECT_LE(h.live_checkpoints,
                    h.residents * static_cast<std::uint64_t>(k_ceiling));
        }
        EXPECT_GE(h.segments, 1u);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(99);
  std::vector<TaskId> live;
  std::vector<Task> pool;
  int op = 0;
  const auto churn_once = [&] {
    if (pool.empty()) {
      const TaskSet ts = draw_small_set(rng, 0.9);
      pool.assign(ts.begin(), ts.end());
    }
    if (!live.empty() &&
        (live.size() > 60 || rng.bernoulli(0.45))) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_time(0, static_cast<Time>(live.size()) - 1));
      ASSERT_TRUE(d.remove(live[pick]));
      live[pick] = live.back();
      live.pop_back();
    } else {
      live.push_back(d.add(pool.back()));
      pool.pop_back();
    }
    if (op % 16 == 0) (void)d.check();
    ++op;
  };
  for (int i = 0; i < 6000; ++i) churn_once();
  // Keep mutating until the readers have genuinely raced the writer
  // (a fast machine can finish the fixed churn before they start).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (reads.load(std::memory_order_relaxed) < 200 &&
         std::chrono::steady_clock::now() < deadline) {
    churn_once();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 100u);
}

TEST(EpochReads, EngineStatsConsistentWithoutShardLocks) {
  // Writers churn the engine while readers poll stats() — which takes
  // no shard mutex. Per-shard publications are atomic snapshots, so
  // the composed counters must satisfy the bookkeeping identities at
  // every single read.
  EngineOptions opts;
  opts.shards = 2;
  opts.admission.skip_exact = true;
  AdmissionEngine engine(opts);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const EngineStats s = engine.stats();
        EXPECT_EQ(s.admission.arrivals,
                  s.admission.admitted + s.admission.rejected);
        EXPECT_EQ(s.resident, static_cast<std::size_t>(
                                  s.admission.admitted -
                                  s.admission.removals));
        std::uint64_t decisions = 0;
        for (const std::uint64_t c : s.admission.by_rung) decisions += c;
        EXPECT_GE(s.admission.arrivals, decisions);  // groups batch tasks
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + static_cast<std::uint64_t>(w));
      std::vector<GlobalTaskId> live;
      std::vector<Task> pool;
      for (int op = 0; op < 1500; ++op) {
        if (pool.empty()) {
          const TaskSet ts = draw_small_set(rng, 0.8);
          pool.assign(ts.begin(), ts.end());
        }
        if (!live.empty() && (live.size() > 40 || rng.bernoulli(0.4))) {
          const std::size_t pick = static_cast<std::size_t>(
              rng.uniform_time(0, static_cast<Time>(live.size()) - 1));
          (void)engine.remove(live[pick]);
          live[pick] = live.back();
          live.pop_back();
        } else if (op % 7 == 0) {
          const std::vector<Task> group{pool.back(), pool.back()};
          pool.pop_back();
          const GroupPlacement p = engine.admit_group(group);
          if (p.admitted) {
            live.insert(live.end(), p.ids.begin(), p.ids.end());
          }
        } else {
          const PlacementDecision p = engine.admit(pool.back());
          pool.pop_back();
          if (p.admitted) live.push_back(p.id);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 100u);

  // Quiesced: the wait-free snapshot equals the fully locked one.
  const EngineStats a = engine.stats();
  const EngineStats b = engine.stats_locked();
  EXPECT_EQ(a.admission.arrivals, b.admission.arrivals);
  EXPECT_EQ(a.admission.admitted, b.admission.admitted);
  EXPECT_EQ(a.admission.removals, b.admission.removals);
  EXPECT_EQ(a.admission.groups, b.admission.groups);
  EXPECT_EQ(a.resident, b.resident);
}

}  // namespace
}  // namespace edfkit
