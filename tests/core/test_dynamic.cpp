#include "core/dynamic_test.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(DynamicTest, OptionValidation) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  DynamicTestOptions bad;
  bad.initial_level = 0;
  EXPECT_THROW((void)dynamic_error_test(ts, bad), std::invalid_argument);
  DynamicTestOptions bad2;
  bad2.growth_factor = 0;
  EXPECT_THROW((void)dynamic_error_test(ts, bad2), std::invalid_argument);
}

TEST(DynamicTest, KnownVerdictsWithWitness) {
  EXPECT_EQ(dynamic_error_test(set_of({tk(2, 6, 8), tk(3, 10, 12)})).verdict,
            Verdict::Feasible);
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  const FeasibilityResult r = dynamic_error_test(bad);
  EXPECT_EQ(r.verdict, Verdict::Infeasible);
  ASSERT_GE(r.witness, 0);
  EXPECT_GT(dbf(bad, r.witness), r.witness);
}

TEST(DynamicTest, DeviAcceptedSetsRunEntirelyOnLevelOne) {
  // The paper's headline property (§4.1): sets Devi accepts cost one
  // iteration per task and never raise the level.
  Rng rng(7);
  int checked = 0;
  for (int i = 0; i < 200 && checked < 25; ++i) {
    const TaskSet ts = draw_fig8_set(rng, rng.uniform(0.80, 0.93));
    if (!devi_test(ts).feasible()) continue;
    ++checked;
    const FeasibilityResult r = dynamic_error_test(ts);
    EXPECT_EQ(r.verdict, Verdict::Feasible);
    EXPECT_EQ(r.iterations, ts.size());
    EXPECT_EQ(r.revisions, 0u);
    EXPECT_EQ(r.final_level, 1);
  }
  EXPECT_GT(checked, 0);
}

TEST(DynamicTest, LevelCapGivesUnknownNotWrongAnswer) {
  // A set Devi rejects but the exact test accepts: with max_level 1 the
  // dynamic test must answer Unknown (it cannot revise).
  const TaskSet ts = set_of({tk(2, 8, 20), tk(3, 25, 30), tk(4, 40, 50),
                             tk(6, 60, 70), tk(9, 90, 100), tk(14, 140, 150),
                             tk(20, 190, 200), tk(30, 290, 300),
                             tk(46, 390, 400), tk(72, 580, 600)});
  ASSERT_EQ(devi_test(ts).verdict, Verdict::Unknown);
  ASSERT_EQ(processor_demand_test(ts).verdict, Verdict::Feasible);
  DynamicTestOptions capped;
  capped.max_level = 1;
  EXPECT_EQ(dynamic_error_test(ts, capped).verdict, Verdict::Unknown);
  // Unlimited level resolves it exactly.
  EXPECT_EQ(dynamic_error_test(ts).verdict, Verdict::Feasible);
}

TEST(DynamicTest, GrowthFactorVariantsAgree) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.7, 1.0));
    DynamicTestOptions linear;
    linear.growth_factor = 1;  // +1 growth
    DynamicTestOptions quad;
    quad.growth_factor = 4;
    const Verdict a = dynamic_error_test(ts).verdict;
    const Verdict b = dynamic_error_test(ts, linear).verdict;
    const Verdict c = dynamic_error_test(ts, quad).verdict;
    EXPECT_EQ(a, b) << ts.to_string();
    EXPECT_EQ(a, c) << ts.to_string();
  }
}

TEST(DynamicTest, EmptyAndOverload) {
  EXPECT_EQ(dynamic_error_test(TaskSet{}).verdict, Verdict::Feasible);
  EXPECT_EQ(dynamic_error_test(set_of({tk(9, 8, 8)})).verdict,
            Verdict::Infeasible);
}

TEST(DynamicTest, HandlesOneShotTasks) {
  TaskSet ts = set_of({tk(2, 10, 20), tk(3, 30, 40)});
  ts.add(tk(4, 25, kTimeInfinity));
  const FeasibilityResult r = dynamic_error_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
}

TEST(DynamicTest, UtilizationExactlyOneTerminates) {
  // U == 1 with harmonic periods: hyperperiod bound keeps Imax finite.
  const TaskSet feasible = set_of({tk(4, 8, 8), tk(6, 12, 12)});
  EXPECT_EQ(dynamic_error_test(feasible).verdict, Verdict::Feasible);
  const TaskSet infeasible = set_of({tk(3, 4, 8), tk(5, 10, 12),
                                     tk(5, 16, 24)});
  EXPECT_EQ(dynamic_error_test(infeasible).verdict, Verdict::Infeasible);
}

/// Exactness: the dynamic test agrees with the processor-demand test on
/// every workload (paper §4.1: the new tests are exact).
class DynamicExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicExactness, MatchesProcessorDemand) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.05));
    const Verdict dyn = dynamic_error_test(ts).verdict;
    const Verdict pd = processor_demand_test(ts).verdict;
    EXPECT_EQ(dyn, pd) << ts.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicExactness,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(DynamicTest, MatchesProcessorDemandOnPaperScale) {
  Rng rng(2024);
  for (int i = 0; i < 25; ++i) {
    const TaskSet ts = draw_fig8_set(rng, rng.uniform(0.90, 0.99));
    EXPECT_EQ(dynamic_error_test(ts).verdict,
              processor_demand_test(ts).verdict)
        << "set " << i;
  }
}

}  // namespace
}  // namespace edfkit
