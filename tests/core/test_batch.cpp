#include "core/batch.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "../helpers.hpp"
#include "lit/literature.hpp"
#include "model/io.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

std::vector<BatchEntry> demo_entries() {
  std::vector<BatchEntry> es;
  es.push_back({"feasible", set_of({tk(2, 6, 8), tk(3, 10, 12)})});
  es.push_back({"infeasible",
                set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)})});
  es.push_back({"overload", set_of({tk(9, 8, 8)})});
  return es;
}

TEST(Batch, RowsKeepOrderAndVerdicts) {
  const BatchReport r = run_batch(demo_entries());
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].name, "feasible");
  EXPECT_EQ(r.rows[1].name, "infeasible");
  ASSERT_EQ(r.rows[0].cells.size(), 4u);  // default: devi/dyn/aa/pd
  // Exact columns (1..3) must agree row-wise.
  for (const BatchRow& row : r.rows) {
    const Verdict expect = row.cells[3].verdict;  // processor demand
    EXPECT_EQ(row.cells[1].verdict, expect) << row.name;
    EXPECT_EQ(row.cells[2].verdict, expect) << row.name;
  }
  EXPECT_TRUE(r.exact_disagreements.empty());
}

TEST(Batch, AcceptedCountsAndEffortStats) {
  const BatchReport r = run_batch(demo_entries());
  // devi accepts only the feasible set; exact tests accept exactly one.
  EXPECT_EQ(r.accepted[1], 1u);
  EXPECT_EQ(r.accepted[2], 1u);
  EXPECT_EQ(r.accepted[3], 1u);
  EXPECT_EQ(r.effort[3].count(), 3u);
  EXPECT_GT(r.effort[3].max(), 0.0);
}

TEST(Batch, CustomTestSelection) {
  BatchConfig cfg;
  cfg.tests = {TestKind::LiuLayland, TestKind::Qpa};
  const BatchReport r = run_batch(demo_entries(), cfg);
  ASSERT_EQ(r.rows[0].cells.size(), 2u);
  EXPECT_EQ(r.tests[1], TestKind::Qpa);
  EXPECT_EQ(r.rows[2].cells[0].verdict, Verdict::Infeasible);  // U > 1
}

TEST(Batch, LiteratureSetsProduceCleanReport) {
  std::vector<BatchEntry> es;
  for (const auto& s : lit::all_literature_sets()) {
    es.push_back({s.name, s.tasks});
  }
  const BatchReport r = run_batch(es);
  EXPECT_TRUE(r.exact_disagreements.empty());
  // All five literature sets are feasible: every exact column accepts 5.
  EXPECT_EQ(r.accepted[1], 5u);
  EXPECT_EQ(r.accepted[2], 5u);
  EXPECT_EQ(r.accepted[3], 5u);
  // Devi accepts exactly Burns and GAP.
  EXPECT_EQ(r.accepted[0], 2u);
}

TEST(Batch, TextAndCsvRendering) {
  const BatchReport r = run_batch(demo_entries());
  const std::string text = r.to_string();
  EXPECT_NE(text.find("feasible"), std::string::npos);
  EXPECT_NE(text.find("accepted:"), std::string::npos);
  EXPECT_EQ(text.find("!!"), std::string::npos);  // no disagreements
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("set,n,utilization"), std::string::npos);
  EXPECT_NE(csv.find("processor-demand_verdict"), std::string::npos);
  // header + 3 rows
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Batch, FileLoadingRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string p1 = dir + "edfkit_batch_a.txt";
  const std::string p2 = dir + "edfkit_batch_b.txt";
  save_task_set(p1, set_of({tk(2, 6, 8)}));
  save_task_set(p2, set_of({tk(9, 8, 8)}));
  const BatchReport r = run_batch_files({p1, p2});
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].cells[3].verdict, Verdict::Feasible);
  EXPECT_EQ(r.rows[1].cells[3].verdict, Verdict::Infeasible);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  EXPECT_THROW((void)run_batch_files({"/no/such/file.txt"}),
               std::runtime_error);
}

TEST(Batch, EmptyBatch) {
  const BatchReport r = run_batch({});
  EXPECT_TRUE(r.rows.empty());
  EXPECT_FALSE(r.to_string().empty());
}

}  // namespace
}  // namespace edfkit
