#include "core/all_approx.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(AllApprox, KnownVerdictsWithWitness) {
  EXPECT_EQ(all_approx_test(set_of({tk(2, 6, 8), tk(3, 10, 12)})).verdict,
            Verdict::Feasible);
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  const FeasibilityResult r = all_approx_test(bad);
  EXPECT_EQ(r.verdict, Verdict::Infeasible);
  ASSERT_GE(r.witness, 0);
  EXPECT_GT(dbf(bad, r.witness), r.witness);
}

TEST(AllApprox, DeviAcceptedSetsCostOneIterationPerTask) {
  // Paper §4.2: "If the initial test interval is accepted for each task
  // without generating new test intervals, the behaviour and the
  // performance of the test is equal to the test given by Devi."
  Rng rng(7);
  int checked = 0;
  for (int i = 0; i < 200 && checked < 25; ++i) {
    const TaskSet ts = draw_fig8_set(rng, rng.uniform(0.80, 0.93));
    if (!devi_test(ts).feasible()) continue;
    ++checked;
    const FeasibilityResult r = all_approx_test(ts);
    EXPECT_EQ(r.verdict, Verdict::Feasible);
    EXPECT_EQ(r.iterations, ts.size());
    EXPECT_EQ(r.revisions, 0u);
  }
  EXPECT_GT(checked, 0);
}

TEST(AllApprox, EmptyAndOverload) {
  EXPECT_EQ(all_approx_test(TaskSet{}).verdict, Verdict::Feasible);
  EXPECT_EQ(all_approx_test(set_of({tk(9, 8, 8)})).verdict,
            Verdict::Infeasible);
}

TEST(AllApprox, HandlesOneShotTasks) {
  TaskSet ts = set_of({tk(2, 10, 20), tk(3, 30, 40)});
  ts.add(tk(4, 25, kTimeInfinity));
  EXPECT_EQ(all_approx_test(ts).verdict, Verdict::Feasible);
}

TEST(AllApprox, UtilizationExactlyOneTerminates) {
  const TaskSet feasible = set_of({tk(4, 8, 8), tk(6, 12, 12)});
  EXPECT_EQ(all_approx_test(feasible).verdict, Verdict::Feasible);
  const TaskSet infeasible =
      set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  EXPECT_EQ(all_approx_test(infeasible).verdict, Verdict::Infeasible);
}

TEST(AllApprox, DeterministicAcrossRuns) {
  Rng rng(3);
  const TaskSet ts = draw_fig8_set(rng, 0.97);
  const FeasibilityResult a = all_approx_test(ts);
  const FeasibilityResult b = all_approx_test(ts);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.revisions, b.revisions);
}

TEST(AllApprox, BoundOverrideRespected) {
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  AllApproxOptions opts;
  opts.bound = 21;  // deliberately unsound bound: witness 22 unreachable
  EXPECT_EQ(all_approx_test(bad, opts).verdict, Verdict::Feasible);
}

/// Exactness: the all-approximated test agrees with the processor-demand
/// test everywhere (paper §4.2).
class AllApproxExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllApproxExactness, MatchesProcessorDemand) {
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 40; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.05));
    EXPECT_EQ(all_approx_test(ts).verdict,
              processor_demand_test(ts).verdict)
        << ts.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllApproxExactness,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(AllApprox, MatchesProcessorDemandOnPaperScale) {
  Rng rng(2025);
  for (int i = 0; i < 25; ++i) {
    const TaskSet ts = draw_fig8_set(rng, rng.uniform(0.90, 0.99));
    EXPECT_EQ(all_approx_test(ts).verdict,
              processor_demand_test(ts).verdict)
        << "set " << i;
  }
}

TEST(AllApprox, EffortWellBelowProcessorDemandAtHighUtilization) {
  // The paper's §5 advantage in miniature, on feasible sets at 98 %
  // utilization (infeasible sets let the processor-demand test exit
  // early, masking the gap). The full Fig. 8/9 benches show the curve;
  // here we pin a conservative 2x aggregate floor.
  Rng rng(99);
  std::uint64_t aa = 0;
  std::uint64_t pd = 0;
  for (int i = 0; i < 50; ++i) {
    const TaskSet ts = draw_fig8_set(rng, 0.98);
    const FeasibilityResult p = processor_demand_test(ts);
    if (!p.feasible()) continue;
    aa += all_approx_test(ts).effort();
    pd += p.iterations;
  }
  ASSERT_GT(pd, 0u);
  EXPECT_LT(2 * aa, pd) << "aa=" << aa << " pd=" << pd;
}

}  // namespace
}  // namespace edfkit
