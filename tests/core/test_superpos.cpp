#include "core/superpos.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(SuperPos, LevelValidation) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  EXPECT_THROW((void)superpos_test(ts, 0), std::invalid_argument);
}

TEST(SuperPos, AcceptsEasyRejectsTight) {
  const TaskSet easy = set_of({tk(1, 6, 8), tk(1, 10, 12)});
  EXPECT_EQ(superpos_test(easy, 1).verdict, Verdict::Feasible);
  const TaskSet tight = set_of({tk(9, 5, 10), tk(5, 55, 100)});
  EXPECT_EQ(superpos_test(tight, 1).verdict, Verdict::Unknown);
}

TEST(SuperPos, UtilizationOverloadIsInfeasible) {
  EXPECT_EQ(superpos_test(set_of({tk(9, 8, 8)}), 3).verdict,
            Verdict::Infeasible);
}

TEST(SuperPos, EmptySetFeasible) {
  EXPECT_EQ(superpos_test(TaskSet{}, 1).verdict, Verdict::Feasible);
}

TEST(SuperPos, HandlesOneShotTasks) {
  TaskSet ts = set_of({tk(1, 10, 20)});
  ts.add(tk(2, 15, kTimeInfinity));
  EXPECT_EQ(superpos_test(ts, 1).verdict, Verdict::Feasible);
  EXPECT_EQ(superpos_test(ts, 4).verdict, Verdict::Feasible);
}

/// Paper Lemma 2 (§3.5): Devi's test accepts exactly when SuperPos(1)
/// accepts. This is the first formal contribution of the paper — here it
/// is checked on random workloads at several utilizations.
class DeviEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviEquivalence, DeviMatchesSuperPos1) {
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.4, 1.05));
    const Verdict devi = devi_test(ts).verdict;
    const Verdict sp1 = superpos_test(ts, 1).verdict;
    EXPECT_EQ(devi, sp1) << ts.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviEquivalence,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(SuperPos, DeviEquivalenceOnPaperScaleWorkloads) {
  Rng rng(1234);
  for (int i = 0; i < 30; ++i) {
    const TaskSet ts = draw_fig8_set(rng, rng.uniform(0.90, 0.99));
    EXPECT_EQ(devi_test(ts).verdict, superpos_test(ts, 1).verdict)
        << "set " << i;
  }
}

/// Monotonicity: raising the level never loses an acceptance, and every
/// acceptance is sound against the exact test (Fig. 1's structure).
class SuperPosHierarchy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuperPosHierarchy, AcceptanceMonotoneAndSound) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 30; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.6, 1.0));
    bool prev = false;
    for (const Time level : {1, 2, 4, 8, 16}) {
      const bool ok = superpos_test(ts, level).feasible();
      if (prev) {
        EXPECT_TRUE(ok) << "acceptance lost at level " << level << "\n"
                        << ts.to_string();
      }
      prev = ok;
    }
    if (prev) {
      EXPECT_EQ(processor_demand_test(ts).verdict, Verdict::Feasible)
          << ts.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperPosHierarchy,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(SuperPos, HighLevelConvergesToExactOnSmallSets) {
  Rng rng(55);
  int disagreements_low = 0;
  for (int i = 0; i < 40; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.7, 1.0));
    const bool exact = processor_demand_test(ts).feasible();
    const bool sp = superpos_test(ts, 64).feasible();
    if (sp != exact) {
      EXPECT_TRUE(exact && !sp) << "superpos accepted an infeasible set!";
      ++disagreements_low;
    }
  }
  // At level 64 on tiny-period sets the approximation is essentially
  // exact; allow a small residue of conservative rejections.
  EXPECT_LE(disagreements_low, 4);
}

}  // namespace
}  // namespace edfkit
