#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "../helpers.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Analyzer, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (const TestKind k : all_test_kinds()) {
    names.insert(to_string(k));
  }
  EXPECT_EQ(names.size(), all_test_kinds().size());
  EXPECT_EQ(std::string(to_string(TestKind::Dynamic)), "dynamic");
  EXPECT_EQ(std::string(to_string(TestKind::AllApprox)), "all-approx");
}

TEST(Analyzer, ExactnessFlags) {
  EXPECT_TRUE(is_exact(TestKind::ProcessorDemand));
  EXPECT_TRUE(is_exact(TestKind::Qpa));
  EXPECT_TRUE(is_exact(TestKind::Dynamic));
  EXPECT_TRUE(is_exact(TestKind::AllApprox));
  EXPECT_FALSE(is_exact(TestKind::Devi));
  EXPECT_FALSE(is_exact(TestKind::SuperPos));
  EXPECT_FALSE(is_exact(TestKind::Chakraborty));
  EXPECT_FALSE(is_exact(TestKind::LiuLayland));
}

TEST(Analyzer, DispatchRunsEveryKind) {
  const TaskSet ts = set_of({tk(2, 6, 8), tk(3, 10, 12), tk(4, 20, 24)});
  // The legacy facade is a uniprocessor surface; the global backends are
  // reached through the platform-aware Query API instead.
  for (const TestKind k : BackendRegistry::instance().kinds_for(Platform{})) {
    const FeasibilityResult r = run_test(ts, k);
    // This set is exactly feasible; exact tests must say so, sufficient
    // tests may either accept or give up, but never claim infeasibility.
    EXPECT_NE(r.verdict, Verdict::Infeasible) << to_string(k);
    if (is_exact(k)) {
      EXPECT_EQ(r.verdict, Verdict::Feasible) << to_string(k);
    }
  }
}

TEST(Analyzer, OptionsReachTheTests) {
  const TaskSet ts = set_of({tk(2, 8, 20), tk(3, 25, 30), tk(4, 40, 50),
                             tk(6, 60, 70), tk(9, 90, 100), tk(14, 140, 150),
                             tk(20, 190, 200), tk(30, 290, 300),
                             tk(46, 390, 400), tk(72, 580, 600)});
  AnalyzerOptions strict;
  strict.dynamic.max_level = 1;  // degrade dynamic to SuperPos(1)
  EXPECT_EQ(run_test(ts, TestKind::Dynamic, strict).verdict,
            Verdict::Unknown);
  AnalyzerOptions open;
  EXPECT_EQ(run_test(ts, TestKind::Dynamic, open).verdict,
            Verdict::Feasible);
  AnalyzerOptions sp;
  sp.superpos_level = 1;
  const auto sp1 = run_test(ts, TestKind::SuperPos, sp);
  sp.superpos_level = 32;
  const auto sp32 = run_test(ts, TestKind::SuperPos, sp);
  EXPECT_EQ(sp1.verdict, Verdict::Unknown);
  EXPECT_EQ(sp32.verdict, Verdict::Feasible);
}

TEST(Analyzer, CompareAllMentionsEveryTest) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  const std::string table = compare_all(ts);
  for (const TestKind k : BackendRegistry::instance().kinds_for(Platform{})) {
    EXPECT_NE(table.find(to_string(k)), std::string::npos) << to_string(k);
  }
}

}  // namespace
}  // namespace edfkit
