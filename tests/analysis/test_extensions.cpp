#include "analysis/extensions.hpp"

#include <gtest/gtest.h>

#include <array>

#include "../helpers.hpp"
#include "analysis/processor_demand.hpp"
#include "core/all_approx.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(ContextSwitch, InflatesWcetByTwoSwitches) {
  const TaskSet ts = set_of({tk(2, 6, 8), tk(3, 10, 12)});
  const TaskSet out = with_context_switch_cost(ts, 1);
  EXPECT_EQ(out[0].wcet, 4);
  EXPECT_EQ(out[1].wcet, 5);
  EXPECT_EQ(out[0].deadline, 6);
  EXPECT_THROW((void)with_context_switch_cost(ts, -1),
               std::invalid_argument);
  EXPECT_EQ(with_context_switch_cost(ts, 0), ts);
}

TEST(ContextSwitch, OverheadTightensVerdictMonotonically) {
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.6, 0.95));
    const bool base_ok = all_approx_test(ts).feasible();
    const bool loaded_ok =
        all_approx_test(with_context_switch_cost(ts, 1)).feasible();
    if (loaded_ok) {
      EXPECT_TRUE(base_ok) << ts.to_string();
    }
  }
}

TEST(SelfSuspension, FoldsIntoJitter) {
  const TaskSet ts = set_of({tk(2, 10, 12), tk(3, 15, 20)});
  const std::array<Time, 2> susp = {3, 0};
  const TaskSet out = with_self_suspension(ts, susp);
  EXPECT_EQ(out[0].jitter, 3);
  EXPECT_EQ(out[0].effective_deadline(), 7);
  EXPECT_EQ(out[1].jitter, 0);
}

TEST(SelfSuspension, Validation) {
  const TaskSet ts = set_of({tk(2, 10, 12)});
  const std::array<Time, 2> wrong_size = {1, 1};
  EXPECT_THROW((void)with_self_suspension(ts, wrong_size),
               std::invalid_argument);
  const std::array<Time, 1> too_big = {10};
  EXPECT_THROW((void)with_self_suspension(ts, too_big),
               std::invalid_argument);
  const std::array<Time, 1> negative = {-1};
  EXPECT_THROW((void)with_self_suspension(ts, negative),
               std::invalid_argument);
}

TEST(SrpBlocking, ZeroBlockingMatchesPlainTest) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.6, 1.0));
    const std::vector<Time> none(ts.size(), 0);
    EXPECT_EQ(srp_blocking_test(ts, none).verdict,
              processor_demand_test(ts).verdict)
        << ts.to_string();
  }
}

TEST(SrpBlocking, BlockingCanBreakATightSet) {
  // Feasible without blocking; a long critical section of the slack
  // task blocks the tight one past its deadline.
  const TaskSet ts = set_of({tk(3, 4, 8), tk(2, 20, 12)});
  const std::vector<Time> none = {0, 0};
  ASSERT_EQ(srp_blocking_test(ts, none).verdict, Verdict::Feasible);
  const std::vector<Time> heavy = {0, 2};  // task 1 (D=20) blocks task 0
  const FeasibilityResult r = srp_blocking_test(ts, heavy);
  EXPECT_EQ(r.verdict, Verdict::Infeasible);
  EXPECT_EQ(r.witness, 4);  // dbf(4)=3 plus B(4)=2 > 4
}

TEST(SrpBlocking, OnlyLaterDeadlinesBlock) {
  // The critical section of the *tightest* task never contributes to
  // B(I) at its own deadline.
  const TaskSet ts = set_of({tk(3, 4, 8), tk(2, 20, 12)});
  const std::vector<Time> own = {4, 0};  // tight task holds the resource
  EXPECT_EQ(srp_blocking_test(ts, own).verdict, Verdict::Feasible);
}

TEST(SrpBlocking, BlockingMonotone) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.6, 0.95));
    std::vector<Time> small(ts.size());
    std::vector<Time> big(ts.size());
    for (std::size_t k = 0; k < ts.size(); ++k) {
      small[k] = rng.uniform_time(0, 1);
      big[k] = small[k] + rng.uniform_time(0, 2);
    }
    const bool big_ok = srp_blocking_test(ts, big).feasible();
    const bool small_ok = srp_blocking_test(ts, small).feasible();
    if (big_ok) {
      EXPECT_TRUE(small_ok) << ts.to_string();
    }
  }
}

TEST(SrpBlocking, Validation) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  const std::vector<Time> wrong(2, 0);
  EXPECT_THROW((void)srp_blocking_test(ts, wrong), std::invalid_argument);
  const std::vector<Time> neg = {-1};
  EXPECT_THROW((void)srp_blocking_test(ts, neg), std::invalid_argument);
}

}  // namespace
}  // namespace edfkit
