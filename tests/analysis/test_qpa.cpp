#include "analysis/qpa.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/processor_demand.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Qpa, KnownVerdicts) {
  EXPECT_EQ(qpa_test(set_of({tk(2, 6, 8), tk(3, 10, 12), tk(4, 20, 24)}))
                .verdict,
            Verdict::Feasible);
  const FeasibilityResult bad =
      qpa_test(set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)}));
  EXPECT_EQ(bad.verdict, Verdict::Infeasible);
  ASSERT_GE(bad.witness, 0);
  EXPECT_GT(dbf(set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)}),
                bad.witness),
            bad.witness);
}

TEST(Qpa, EmptyAndOverload) {
  EXPECT_EQ(qpa_test(TaskSet{}).verdict, Verdict::Feasible);
  EXPECT_EQ(qpa_test(set_of({tk(9, 8, 8)})).verdict, Verdict::Infeasible);
}

TEST(Qpa, ImplicitDeadlinesTrivial) {
  const TaskSet ts = set_of({tk(4, 8, 8), tk(6, 12, 12)});
  EXPECT_EQ(qpa_test(ts).verdict, Verdict::Feasible);
}

/// QPA and the forward processor-demand test are both exact: they must
/// agree everywhere. QPA typically needs far fewer iterations — assert
/// the agreement and record the advantage.
class QpaAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QpaAgreement, MatchesProcessorDemand) {
  Rng rng(GetParam());
  std::uint64_t qpa_total = 0;
  std::uint64_t pd_total = 0;
  for (int i = 0; i < 40; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.0));
    const FeasibilityResult q = qpa_test(ts);
    const FeasibilityResult p = processor_demand_test(ts);
    EXPECT_EQ(q.verdict, p.verdict) << ts.to_string();
    qpa_total += q.iterations;
    pd_total += p.iterations;
  }
  // Not a hard guarantee, but on these workloads QPA should never be
  // grossly worse in aggregate.
  EXPECT_LE(qpa_total, 4 * pd_total + 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QpaAgreement,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Qpa, AgreesOnPaperScaleWorkloads) {
  Rng rng(42);
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = draw_fig8_set(rng, 0.95);
    EXPECT_EQ(qpa_test(ts).verdict, processor_demand_test(ts).verdict);
  }
}

}  // namespace
}  // namespace edfkit
