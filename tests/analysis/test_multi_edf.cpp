/// \file test_multi_edf.cpp
/// The multiprocessor acceptance suite: every global-EDF sufficient test
/// cross-validated against the m-processor simulation oracle, the
/// global-vs-partitioned admission differentials, and mutation fuzzing
/// of MultiprocessorCertificates.
///
/// Soundness direction: a sufficient test answering Feasible on a set
/// the oracle refutes (a miss under the synchronous-periodic arrival
/// pattern, which is a legal sporadic arrival sequence) is a
/// contradiction — the fuzz loop asserts it never happens. The reverse
/// direction is NOT asserted for the window tests: they are sufficient
/// only, and Unknown against an oracle-feasible set is expected.
#include "analysis/multi/global_tests.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../helpers.hpp"
#include "admission/controller.hpp"
#include "admission/engine.hpp"
#include "query/certificate.hpp"
#include "query/query.hpp"
#include "sim/oracle.hpp"

namespace edfkit {
namespace {

using testing::fuzz_multiplier;
using testing::set_of;
using testing::small_random_sets;
using testing::tk;
using testing::write_fuzz_artifact;

// ---------------------------------------------------------------------------
// Hand fixtures per ladder rung.
// ---------------------------------------------------------------------------

TEST(GlobalLadder, GfbAcceptsLowDensitySets) {
  // delta_sum = 1.8 <= m - (m-1) * delta_max = 4 - 3 * 0.6 = 2.2.
  const TaskSet ts = set_of({tk(6, 10, 10), tk(6, 10, 10), tk(6, 10, 10)});
  const Platform p{4};
  EXPECT_TRUE(multi::gfb_density_test(ts, p).feasible());
}

TEST(GlobalLadder, GfbRefutesOverUtilization) {
  // U = 3.0 > m = 2: unconditionally infeasible for any work-conserving
  // scheduler on 2 processors.
  const TaskSet ts =
      set_of({tk(10, 10, 10), tk(10, 10, 10), tk(10, 10, 10)});
  EXPECT_TRUE(multi::gfb_density_test(ts, Platform{2}).infeasible());
}

TEST(GlobalLadder, GfbRefutesJobExceedingDeadline) {
  // C > D: a single job can never meet its deadline, m irrelevant.
  const TaskSet ts = set_of({tk(9, 8, 20)});
  EXPECT_TRUE(multi::gfb_density_test(ts, Platform{8}).infeasible());
}

TEST(GlobalLadder, GfbIsUnknownOnDenseButFeasibleSets) {
  // delta_sum = 1.6 > 2 - 1 * 0.8 = 1.2, so GFB cannot decide — yet two
  // tasks on two processors are trivially feasible. GFB must not guess.
  const TaskSet ts = set_of({tk(4, 5, 5), tk(4, 5, 5)});
  const FeasibilityResult r = multi::gfb_density_test(ts, Platform{2});
  EXPECT_FALSE(r.feasible());
  EXPECT_FALSE(r.infeasible());
}

TEST(GlobalLadder, WindowRungsDeclineUnconstrainedOrJittery) {
  // D > T falls outside the window rungs' model: they must answer
  // Unknown rather than apply a formula out of its preconditions.
  const TaskSet unconstrained = set_of({tk(2, 30, 10)});
  EXPECT_FALSE(multi::window_rungs_applicable(unconstrained));
  const Platform p{2};
  for (const FeasibilityResult& r :
       {multi::global_bcl_test(unconstrained, p),
        multi::global_bcl_iterative_test(unconstrained, p),
        multi::global_load_test(unconstrained, p),
        multi::global_rta_test(unconstrained, p)}) {
    EXPECT_FALSE(r.feasible());
    EXPECT_FALSE(r.infeasible());
  }
}

TEST(GlobalLadder, RtaEmitsResponseBoundsWithinDeadlines) {
  const TaskSet ts = set_of({tk(2, 10, 10), tk(3, 10, 10), tk(4, 20, 20)});
  std::vector<Time> bounds;
  const FeasibilityResult r =
      multi::global_rta_test(ts, Platform{2}, {}, &bounds);
  ASSERT_TRUE(r.feasible());
  ASSERT_EQ(bounds.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_GE(bounds[i], ts[i].wcet);
    EXPECT_LE(bounds[i], ts[i].effective_deadline());
  }
}

TEST(GlobalLadder, SimRefutesDhallEffectSet) {
  // Two light tasks occupy both processors for 1 tick every 5; the
  // heavy task gets at most 24 of the 25 ticks it needs by t = 30.
  const TaskSet ts = set_of({tk(1, 5, 5), tk(1, 5, 5), tk(25, 30, 30)});
  EXPECT_TRUE(simulate_global_feasibility(ts, 2).infeasible());
  // The same set on 3 processors leaves a processor free for the heavy
  // task throughout: feasible.
  EXPECT_TRUE(simulate_global_feasibility(ts, 3).feasible());
}

// ---------------------------------------------------------------------------
// Oracle cross-validation fuzz: no sufficient test accepts a set the
// m-processor simulation refutes.
// ---------------------------------------------------------------------------

TEST(GlobalOracleFuzz, NoSufficientTestContradictsTheSimulation) {
  const std::size_t mult = fuzz_multiplier();
  std::size_t decided = 0;
  for (const std::uint32_t m : {2u, 3u, 4u}) {
    // Scale utilization with m so the fuzz straddles the boundary:
    // some sets saturate the platform, some leave headroom.
    for (const double u_per_proc : {0.35, 0.6, 0.85}) {
      const double u = u_per_proc * static_cast<double>(m);
      const std::size_t count = 10 * mult;
      const unsigned seed = 1000u * m + static_cast<unsigned>(u * 100);
      for (const TaskSet& ts : small_random_sets(count, u, seed)) {
        if (ts.empty()) continue;
        const Platform p{m};
        const FeasibilityResult oracle = simulate_global_feasibility(ts, m);
        struct Rung {
          const char* name;
          FeasibilityResult r;
        };
        const Rung rungs[] = {
            {"gfb", multi::gfb_density_test(ts, p)},
            {"gbl-bcl", multi::global_bcl_test(ts, p)},
            {"gbl-bcl-iter", multi::global_bcl_iterative_test(ts, p)},
            {"gbl-load", multi::global_load_test(ts, p)},
            {"gbl-rta", multi::global_rta_test(ts, p)},
        };
        for (const Rung& rung : rungs) {
          if (rung.r.feasible()) ++decided;
          if (rung.r.feasible() && oracle.infeasible()) {
            write_fuzz_artifact("multi_oracle_contradiction", ts.to_string());
            FAIL() << rung.name << " accepted on m=" << m
                   << " but the simulation missed a deadline:\n"
                   << ts.to_string();
          }
        }
      }
    }
  }
  // The family must actually exercise accepting rungs to mean anything.
  EXPECT_GT(decided, 0u);
}

// ---------------------------------------------------------------------------
// Admission differentials: global vs partitioned are incomparable —
// each admits a workload the other rejects.
// ---------------------------------------------------------------------------

TEST(GlobalAdmission, GlobalAdmitsWhatFragmentedPartitionsReject) {
  // Churn fragmentation: two heavy tasks fill two shards, a light task
  // lands beside each; removing the heavies strands 0.1 utilization on
  // each shard. A re-arriving {heavy, light, light} group then fits on
  // no single shard (0.1 + 1.1 > 1) — but the global view of the same
  // two processors schedules it: lights run [0, 2) on both processors,
  // the heavy takes the remaining 18 ticks of its window.
  const Task heavy = tk(18, 20, 20);
  const Task light = tk(2, 20, 20);

  EngineOptions eo;
  eo.shards = 2;
  AdmissionEngine engine(eo);
  const PlacementDecision h1 = engine.admit(heavy);
  const PlacementDecision h2 = engine.admit(heavy);
  const PlacementDecision l1 = engine.admit(light);
  const PlacementDecision l2 = engine.admit(light);
  ASSERT_TRUE(h1.admitted);
  ASSERT_TRUE(h2.admitted);
  ASSERT_TRUE(l1.admitted);
  ASSERT_TRUE(l2.admitted);
  ASSERT_NE(h1.id.shard, h2.id.shard);  // the heavies cannot share a shard
  ASSERT_TRUE(engine.remove(h1.id));
  ASSERT_TRUE(engine.remove(h2.id));

  const std::vector<Task> group = {heavy, light, light};
  const GroupPlacement gp = engine.admit_group(group);
  EXPECT_FALSE(gp.admitted);  // no shard holds U = 1.2

  // The global controller sees the same arrival history against the
  // same two processors and admits the group.
  AdmissionOptions ao;
  ao.platform = Platform{2};
  ao.return_certificate = true;
  AdmissionController global(ao);
  const AdmissionDecision gh1 = global.try_admit(heavy);
  const AdmissionDecision gh2 = global.try_admit(heavy);
  ASSERT_TRUE(gh1.admitted);
  ASSERT_TRUE(gh2.admitted);
  ASSERT_TRUE(global.try_admit(light).admitted);
  ASSERT_TRUE(global.try_admit(light).admitted);
  ASSERT_TRUE(global.remove(gh1.id));
  ASSERT_TRUE(global.remove(gh2.id));

  const GroupDecision gd = global.admit_group(group);
  EXPECT_TRUE(gd.admitted);
  // Every global-mode accept carries a verifying certificate.
  ASSERT_TRUE(gd.certificate.present());
  EXPECT_TRUE(gd.certificate.multiprocessor());
  EXPECT_EQ(gd.certificate.processors, 2u);
  const CertificateCheck check = verify(global.resident(), gd.certificate);
  EXPECT_TRUE(check.valid) << check.reason;
}

TEST(GlobalAdmission, PartitionedAdmitsWhatGlobalRejects) {
  // The Dhall effect: under global EDF the two light tasks preempt both
  // processors together, starving the heavy task (24 < 25 by t = 30).
  // Partitioned placement isolates the heavy task on its own shard.
  const Task light = tk(1, 5, 5);
  const Task heavy = tk(25, 30, 30);

  AdmissionOptions ao;
  ao.platform = Platform{2};
  ao.return_certificate = true;
  AdmissionController global(ao);
  ASSERT_TRUE(global.try_admit(light).admitted);
  ASSERT_TRUE(global.try_admit(light).admitted);
  const AdmissionDecision rejected = global.try_admit(heavy);
  EXPECT_FALSE(rejected.admitted);
  // A proven (simulation-refuted) reject also carries its certificate.
  if (rejected.certificate.present()) {
    EXPECT_TRUE(rejected.certificate.multiprocessor());
  }
  EXPECT_EQ(global.resident().size(), 2u);  // rollback left the set intact

  EngineOptions eo;
  eo.shards = 2;
  AdmissionEngine engine(eo);
  ASSERT_TRUE(engine.admit(light).admitted);
  ASSERT_TRUE(engine.admit(light).admitted);
  EXPECT_TRUE(engine.admit(heavy).admitted);
}

TEST(GlobalAdmission, EngineGlobalModeCoercesToOneController) {
  EngineOptions eo;
  eo.shards = 4;
  eo.admission.platform = Platform{4};
  eo.admission.return_certificate = true;
  AdmissionEngine engine(eo);
  EXPECT_TRUE(engine.global_mode());
  EXPECT_EQ(engine.shards(), 1u);
  EXPECT_EQ(engine.processors(), 4u);

  // Density 1.8 <= 4 - 3 * 0.6: GFB admits all three on the one
  // global controller, where a 4-shard partitioned engine would have
  // spread them out.
  for (int i = 0; i < 3; ++i) {
    const PlacementDecision d = engine.admit(tk(6, 10, 10));
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.id.shard, 0u);
  }
  EngineStats stats;
  engine.stats_into(stats);
  EXPECT_TRUE(stats.global);
  EXPECT_EQ(stats.processors, 4u);
  EXPECT_EQ(stats.resident, 3u);
}

// ---------------------------------------------------------------------------
// Certificate mutation fuzz: corrupted multiprocessor certificates must
// fail the independent checker.
// ---------------------------------------------------------------------------

TEST(MultiCertificate, MutationsAreRejected) {
  std::size_t mutated_checked = 0;
  AdmissionOptions ao;
  ao.platform = Platform{2};
  ao.return_certificate = true;

  const std::size_t count = 8 * fuzz_multiplier();
  for (const TaskSet& ts : small_random_sets(count, 1.2, /*seed=*/90125)) {
    if (ts.empty()) continue;
    AdmissionController ctl(ao);
    GroupDecision gd = ctl.admit_group(std::vector<Task>(ts.begin(), ts.end()));
    if (!gd.admitted || !gd.certificate.multiprocessor()) continue;
    const TaskSet resident = ctl.resident();
    ASSERT_TRUE(verify(resident, gd.certificate).valid);

    // Mutation 1: claim a narrower platform than the accept was proven
    // on — the recomputation must not hold at the reduced width for a
    // set this dense (skip the rare sets that are feasible on m = 1).
    Certificate narrower = gd.certificate;
    narrower.processors = 1;
    const FeasibilityResult uni = simulate_global_feasibility(ts, 1);
    if (uni.infeasible()) {
      EXPECT_FALSE(verify(resident, narrower).valid)
          << "narrowed platform accepted:\n" << resident.to_string();
    }

    // Mutation 2: a window certificate that names no window test is
    // unverifiable — the checker recomputes the *named* condition and
    // must refuse when there is nothing to recompute.
    Certificate mismatched = gd.certificate;
    mismatched.kind = CertificateKind::MultiFeasibleWindow;
    mismatched.multi_test = MultiTest::None;
    EXPECT_FALSE(verify(resident, mismatched).valid);

    // Mutation 3: transplant onto a heavier set (every wcet = period):
    // utilization exceeds m, nothing feasible can be re-established.
    std::vector<Task> heavier(resident.begin(), resident.end());
    for (Task& t : heavier) t.wcet = 3 * t.period;
    EXPECT_FALSE(verify(TaskSet(heavier), gd.certificate).valid);

    // Mutation 4 (RTA form): shrink a claimed response bound below the
    // recomputed one / inflate past the deadline.
    if (gd.certificate.multi_test == MultiTest::Rta &&
        !gd.certificate.borders.empty()) {
      Certificate inflated = gd.certificate;
      inflated.borders[0] = resident[0].effective_deadline() + 1;
      EXPECT_FALSE(verify(resident, inflated).valid);
    }
    ++mutated_checked;
  }
  EXPECT_GT(mutated_checked, 0u);
}

TEST(MultiCertificate, QueryPlatformOutcomesVerify) {
  // The query-path equivalent of the admission test above: decided
  // multiprocessor outcomes through Query carry verifying certificates.
  std::size_t decided = 0;
  for (const TaskSet& ts : small_random_sets(10, 1.4, /*seed=*/3344)) {
    if (ts.empty()) continue;
    const Outcome out =
        Query::cascade(Platform{2}).run(Workload::periodic(ts));
    if (!out.decided) continue;
    ASSERT_TRUE(out.certificate.present()) << ts.to_string();
    const CertificateCheck check = verify(ts, out.certificate);
    EXPECT_TRUE(check.valid) << check.reason << "\n" << ts.to_string();
    ++decided;
  }
  EXPECT_GT(decided, 0u);
}

}  // namespace
}  // namespace edfkit
