#include "analysis/devi.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/processor_demand.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Devi, AcceptsImplicitDeadlineSetAtFullUtilization) {
  // D == T: the gap terms vanish and the condition reduces to U <= 1.
  const TaskSet ts = set_of({tk(4, 8, 8), tk(6, 12, 12)});
  EXPECT_EQ(devi_test(ts).verdict, Verdict::Feasible);
}

TEST(Devi, RejectsWithoutClaimingInfeasibility) {
  // High utilization + gaps: the envelope overshoots -> Unknown, never
  // Infeasible (the test is only sufficient).
  const TaskSet ts = set_of({tk(9, 5, 10), tk(5, 55, 100)});
  const FeasibilityResult r = devi_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
}

TEST(Devi, InfeasibleOnlyViaUtilization) {
  const TaskSet ts = set_of({tk(9, 8, 8), tk(6, 12, 12)});
  EXPECT_EQ(devi_test(ts).verdict, Verdict::Infeasible);
}

TEST(Devi, IterationsOnePerTaskOnAcceptance) {
  const TaskSet ts =
      set_of({tk(1, 10, 20), tk(1, 15, 30), tk(1, 25, 50), tk(1, 40, 80)});
  const FeasibilityResult r = devi_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
  EXPECT_EQ(r.iterations, ts.size());
}

TEST(Devi, OrderIndependent) {
  // devi_test sorts internally; permuting the input changes nothing.
  const TaskSet a = set_of({tk(2, 8, 20), tk(9, 90, 100), tk(4, 40, 50)});
  const TaskSet b = set_of({tk(9, 90, 100), tk(4, 40, 50), tk(2, 8, 20)});
  EXPECT_EQ(devi_test(a).verdict, devi_test(b).verdict);
}

TEST(Devi, HandlesOneShotTasks) {
  TaskSet ts = set_of({tk(1, 10, 20)});
  ts.add(tk(2, 15, kTimeInfinity));
  const FeasibilityResult r = devi_test(ts);
  // Must terminate with a sound verdict (either accept or give up).
  EXPECT_NE(r.verdict, Verdict::Infeasible);
}

TEST(Devi, SurvivesCoprimeGiantPeriods) {
  // The certified fixed-point path: no rational overflow false-rejects.
  Rng rng(77);
  TaskSet ts;
  for (int i = 0; i < 150; ++i) {
    const Time t = rng.uniform_time(1'000'000'000, 2'000'000'000);
    ts.add(tk(t / 1000, (t / 10) * 9, t));  // u ~ 0.1%, gap 10 %
  }
  const FeasibilityResult r = devi_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
  EXPECT_FALSE(r.degraded);
}

/// Soundness: whatever Devi accepts, the exact test confirms.
class DeviSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviSoundness, AcceptedImpliesExactFeasible) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.0));
    if (devi_test(ts).feasible()) {
      EXPECT_EQ(processor_demand_test(ts).verdict, Verdict::Feasible)
          << ts.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviSoundness,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace edfkit
