#include "analysis/chakraborty.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/processor_demand.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Chakraborty, EpsilonValidation) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  EXPECT_THROW((void)chakraborty_test(ts, 0.0), std::invalid_argument);
  EXPECT_THROW((void)chakraborty_test(ts, 1.5), std::invalid_argument);
  EXPECT_NO_THROW((void)chakraborty_test(ts, 1.0));
}

TEST(Chakraborty, EpsilonRoundsToReciprocalInteger) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  EXPECT_DOUBLE_EQ(chakraborty_test(ts, 0.3).epsilon, 0.25);  // k = 4
  EXPECT_DOUBLE_EQ(chakraborty_test(ts, 0.5).epsilon, 0.5);   // k = 2
}

TEST(Chakraborty, AcceptsEasySet) {
  const TaskSet ts = set_of({tk(1, 6, 8), tk(1, 10, 12)});
  const ChakrabortyResult r = chakraborty_test(ts, 0.25);
  EXPECT_EQ(r.base.verdict, Verdict::Feasible);
  EXPECT_LE(r.demand_ratio, 1.0);
}

TEST(Chakraborty, RejectionIsUnknownNotInfeasible) {
  const TaskSet ts = set_of({tk(9, 5, 10), tk(5, 55, 100)});
  const ChakrabortyResult r = chakraborty_test(ts, 0.5);
  EXPECT_EQ(r.base.verdict, Verdict::Unknown);
  EXPECT_GT(r.demand_ratio, 1.0);
}

TEST(Chakraborty, UtilizationOverload) {
  const ChakrabortyResult r =
      chakraborty_test(set_of({tk(9, 8, 8)}), 0.25);
  EXPECT_EQ(r.base.verdict, Verdict::Infeasible);
}

/// Soundness + monotonicity: acceptance implies exact feasibility and a
/// smaller epsilon never loses acceptance.
class ChakrabortyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChakrabortyProperty, SoundAndMonotoneInEpsilon) {
  Rng rng(GetParam());
  for (int i = 0; i < 25; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.0));
    const bool coarse = chakraborty_test(ts, 0.5).base.feasible();
    const bool mid = chakraborty_test(ts, 0.25).base.feasible();
    const bool fine = chakraborty_test(ts, 0.125).base.feasible();
    if (coarse) {
      EXPECT_TRUE(mid) << ts.to_string();
    }
    if (mid) {
      EXPECT_TRUE(fine) << ts.to_string();
    }
    if (coarse || mid || fine) {
      EXPECT_EQ(processor_demand_test(ts).verdict, Verdict::Feasible)
          << ts.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChakrabortyProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace edfkit
