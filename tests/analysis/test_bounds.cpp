#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Bounds, GeorgeKnownValue) {
  // Single task C=2, D=6, T=10: B = (1 - 6/10)*2 / (1 - 0.2) = 0.8/0.8 = 1.
  const TaskSet ts = set_of({tk(2, 6, 10)});
  const auto g = george_bound(ts);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, 1);
}

TEST(Bounds, BaruahKnownValue) {
  // U/(1-U) * max(T-D) = 0.2/0.8 * 4 = 1.
  const TaskSet ts = set_of({tk(2, 6, 10)});
  const auto b = baruah_bound(ts);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 1);
}

TEST(Bounds, BaruahInapplicableForArbitraryDeadlines) {
  const TaskSet ts = set_of({tk(2, 15, 10)});
  EXPECT_FALSE(baruah_bound(ts).has_value());
  EXPECT_TRUE(george_bound(ts).has_value());
}

TEST(Bounds, NoneAtFullUtilization) {
  const TaskSet ts = set_of({tk(5, 8, 8), tk(3, 6, 6)});  // U > 1
  EXPECT_FALSE(george_bound(ts).has_value());
  EXPECT_FALSE(baruah_bound(ts).has_value());
  EXPECT_FALSE(superposition_bound(ts).has_value());
}

TEST(Bounds, SuperpositionAtLeastDmax) {
  const TaskSet ts = set_of({tk(1, 100, 1000), tk(1, 5000, 100000)});
  const auto s = superposition_bound(ts);
  ASSERT_TRUE(s.has_value());
  EXPECT_GE(*s, 5000);
}

TEST(Bounds, SuperpositionEqualsGeorgePlusDmaxClampWhenConstrained) {
  // For constrained deadlines the signed sum equals George's sum.
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.3, 0.95));
    const auto g = george_bound(ts);
    const auto s = superposition_bound(ts);
    if (!g || !s) continue;
    EXPECT_EQ(*s, std::max(ts.max_deadline(), *g));
  }
}

TEST(Bounds, BusyPeriodFixpoint) {
  // C=2,T=4 and C=3,T=6: w0=5, rbf(5)=2*2+3=7, rbf(7)=4+6=10, rbf(10)=
  // ceil(10/4)*2 + ceil(10/6)*3 = 6+6=12, rbf(12)=6+6=12 -> L=12.
  const TaskSet ts = set_of({tk(2, 4, 4), tk(3, 6, 6)});
  const auto l = busy_period(ts);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(*l, 12);
}

TEST(Bounds, BusyPeriodRefusesOverload) {
  const TaskSet ts = set_of({tk(5, 4, 4)});
  EXPECT_FALSE(busy_period(ts).has_value());
}

TEST(Bounds, BusyPeriodRespectsCap) {
  const TaskSet ts = set_of({tk(2, 4, 4), tk(3, 6, 6)});
  EXPECT_FALSE(busy_period(ts, 10).has_value());
}

TEST(Bounds, HyperperiodBound) {
  const TaskSet ts = set_of({tk(1, 4, 8), tk(1, 6, 12)});
  EXPECT_EQ(hyperperiod_bound(ts), 24 + 6);
}

TEST(Bounds, ImplicitBoundAtLeastDmax) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = draw_small_set(rng, 0.9);
    EXPECT_GE(implicit_test_bound(ts), ts.max_deadline());
    EXPECT_GE(implicit_test_bound(ts), default_test_bound(ts));
  }
}

TEST(Bounds, ScaledFallbackStaysFinite) {
  // Rational-overflowing set with U < 1: the certified fallback must
  // still deliver a finite George bound.
  Rng rng(13);
  TaskSet ts;
  for (int i = 0; i < 300; ++i) {
    const Time t = rng.uniform_time(1'000'000'000, 2'000'000'000);
    ts.add(tk(t / 1000, (t / 10) * 9, t));
  }
  ASSERT_FALSE(ts.utilization().exact());
  const auto g = george_bound(ts);
  ASSERT_TRUE(g.has_value());
  EXPECT_FALSE(is_time_infinite(*g));
  EXPECT_FALSE(is_time_infinite(default_test_bound(ts)));
}

/// The defining property of a feasibility bound: no demand overflow at or
/// beyond it. Verified against brute force on a window past the bound.
class BoundSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundSoundness, NoOverflowBeyondDefaultBound) {
  Rng rng(GetParam());
  const TaskSet ts = draw_small_set(rng, rng.uniform(0.6, 1.0));
  if (ts.utilization().certainly_gt(Time{1})) return;
  const Time bound = default_test_bound(ts);
  // Any overflow the brute force finds within 4x the bound must lie
  // within the bound itself.
  const Time probe_to = std::min<Time>(4 * bound + 100, 5000);
  const Time w = first_overflow_brute(ts, probe_to);
  if (w >= 0) {
    EXPECT_LE(w, bound) << "counterexample past the claimed bound!\n"
                        << ts.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundSoundness,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace edfkit
