#include "analysis/utilization.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Utilization, ClassifiesExactCases) {
  EXPECT_EQ(classify_utilization(set_of({tk(1, 4, 8)})),
            UtilizationClass::BelowOne);
  EXPECT_EQ(classify_utilization(set_of({tk(4, 8, 8), tk(6, 12, 12)})),
            UtilizationClass::ExactlyOne);
  EXPECT_EQ(classify_utilization(set_of({tk(5, 8, 8), tk(6, 12, 12)})),
            UtilizationClass::AboveOne);
}

TEST(Utilization, CertifiedFallbackOnCoprimeGiants) {
  // Hundreds of large near-coprime periods overflow the rationals; the
  // fixed-point fallback must still classify decisively.
  Rng rng(31);
  TaskSet low;
  TaskSet high;
  for (int i = 0; i < 300; ++i) {
    const Time t = rng.uniform_time(1'000'000'000, 2'000'000'000);
    low.add(tk(t / 1000, t, t));       // each ~0.1%: U ~ 0.3
    high.add(tk(t / 200, t, t));       // each ~0.5%: U ~ 1.5
  }
  EXPECT_FALSE(low.utilization().exact()) << "expected rational overflow";
  EXPECT_EQ(classify_utilization(low), UtilizationClass::BelowOne);
  EXPECT_EQ(classify_utilization(high), UtilizationClass::AboveOne);
  EXPECT_TRUE(utilization_at_most_one(low));
  EXPECT_FALSE(utilization_at_most_one(high));
  EXPECT_TRUE(utilization_exceeds_one(high));
  EXPECT_FALSE(utilization_exceeds_one(low));
}

TEST(Utilization, OneShotContributesZero) {
  EXPECT_EQ(classify_utilization(set_of({tk(1000, 2000, kTimeInfinity)})),
            UtilizationClass::BelowOne);
}

TEST(LiuLayland, ImplicitDeadlinesDecided) {
  EXPECT_EQ(liu_layland_test(set_of({tk(4, 8, 8), tk(6, 12, 12)})).verdict,
            Verdict::Feasible);  // U == 1 exactly
  EXPECT_EQ(liu_layland_test(set_of({tk(5, 8, 8), tk(6, 12, 12)})).verdict,
            Verdict::Infeasible);
}

TEST(LiuLayland, DeadlineAtLeastPeriodStillDecided) {
  // D >= T: demand is dominated by the implicit case, U <= 1 suffices.
  EXPECT_EQ(liu_layland_test(set_of({tk(4, 10, 8), tk(5, 14, 12)})).verdict,
            Verdict::Feasible);
}

TEST(LiuLayland, ConstrainedDeadlinesOnlyNecessary) {
  EXPECT_EQ(liu_layland_test(set_of({tk(4, 6, 8)})).verdict,
            Verdict::Unknown);
  EXPECT_EQ(liu_layland_test(set_of({tk(9, 6, 8)})).verdict,
            Verdict::Infeasible);
}

TEST(LiuLayland, EmptySetFeasible) {
  EXPECT_EQ(liu_layland_test(TaskSet{}).verdict, Verdict::Feasible);
}

/// Property: the certified classification never contradicts the double
/// approximation by more than rounding noise.
class UtilClassProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UtilClassProperty, ConsistentWithDoubleEstimate) {
  Rng rng(GetParam());
  TaskSet ts;
  const int n = rng.uniform_int(1, 120);
  for (int i = 0; i < n; ++i) {
    const Time t = rng.uniform_time(100, 1'000'000);
    const Time c = rng.uniform_time(1, t);
    ts.add(tk(c, t, t));
  }
  const double u = ts.utilization_double();
  switch (classify_utilization(ts)) {
    case UtilizationClass::BelowOne:
      EXPECT_LT(u, 1.0 + 1e-9);
      break;
    case UtilizationClass::AboveOne:
      EXPECT_GT(u, 1.0 - 1e-9);
      break;
    case UtilizationClass::ExactlyOne:
      EXPECT_NEAR(u, 1.0, 1e-9);
      break;
    case UtilizationClass::Marginal:
      EXPECT_NEAR(u, 1.0, 1e-6);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtilClassProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace edfkit
