#include "analysis/processor_demand.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(ProcessorDemand, KnownFeasibleSet) {
  const TaskSet ts = set_of({tk(2, 6, 8), tk(3, 10, 12), tk(4, 20, 24)});
  const FeasibilityResult r = processor_demand_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
  // George bound here is 5, below the first deadline (6): the bound
  // alone settles feasibility with zero interval checks.
  EXPECT_EQ(r.iterations, 0u);
}

TEST(ProcessorDemand, KnownInfeasibleSetWithWitness) {
  const TaskSet ts = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  const FeasibilityResult r = processor_demand_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Infeasible);
  EXPECT_EQ(r.witness, 22);
  EXPECT_GT(dbf(ts, r.witness), r.witness);
}

TEST(ProcessorDemand, UtilizationOverloadShortCircuits) {
  const TaskSet ts = set_of({tk(9, 8, 8)});
  const FeasibilityResult r = processor_demand_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Infeasible);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(ProcessorDemand, EmptySetFeasible) {
  EXPECT_EQ(processor_demand_test(TaskSet{}).verdict, Verdict::Feasible);
}

TEST(ProcessorDemand, ImplicitDeadlinesNeedNoIntervals) {
  // George/Baruah bounds are 0 when U < 1: nothing to check.
  const TaskSet ts = set_of({tk(2, 8, 8), tk(3, 12, 12)});
  const FeasibilityResult r = processor_demand_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(ProcessorDemand, UtilizationExactlyOneImplicitNeedsNoIntervals) {
  // U == 1 with D == T everywhere: Baruah's bound degenerates to 0 and
  // Liu & Layland settles feasibility without interval checks.
  const TaskSet ts = set_of({tk(4, 8, 8), tk(6, 12, 12)});
  const FeasibilityResult r = processor_demand_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(ProcessorDemand, UtilizationExactlyOneFallsBackToHyperperiod) {
  // U == 1 with a constrained deadline: no closed-form bound applies;
  // the hyperperiod bound keeps the walk finite.
  const TaskSet ts = set_of({tk(4, 6, 8), tk(6, 12, 12)});
  const FeasibilityResult r = processor_demand_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_LE(r.max_interval_tested, 36);  // lcm(8,12) + Dmax
}

TEST(ProcessorDemand, MaxIterationsCapYieldsUnknown) {
  Rng rng(3);
  const TaskSet ts = draw_fig8_set(rng, 0.97);
  ProcessorDemandOptions opts;
  opts.max_iterations = 3;
  const FeasibilityResult r = processor_demand_test(ts, opts);
  if (r.verdict == Verdict::Unknown) {
    EXPECT_LE(r.iterations, 3u);
  }
}

TEST(ProcessorDemand, ExplicitBoundOverride) {
  const TaskSet ts = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  ProcessorDemandOptions opts;
  opts.bound = 21;  // witness at 22 is out of reach -> feasible-by-bound
  const FeasibilityResult r = processor_demand_test(ts, opts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);  // (unsound bound on purpose)
}

TEST(ProcessorDemand, BusyPeriodOptionTightensOrMatches) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = draw_small_set(rng, 0.9);
    ProcessorDemandOptions with_bp;
    with_bp.use_busy_period = true;
    const FeasibilityResult a = processor_demand_test(ts);
    const FeasibilityResult b = processor_demand_test(ts, with_bp);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_LE(b.iterations, a.iterations);
  }
}

TEST(ProcessorDemand, WitnessIsFirstOverflow) {
  Rng rng(15);
  int found = 0;
  for (int i = 0; i < 60 && found < 10; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.9, 1.0));
    const FeasibilityResult r = processor_demand_test(ts);
    if (!r.infeasible() || r.witness < 0) continue;
    ++found;
    EXPECT_GT(dbf(ts, r.witness), r.witness);
    EXPECT_EQ(first_overflow_brute(ts, r.witness), r.witness);
  }
  EXPECT_GT(found, 0) << "workload produced no infeasible sets to check";
}

}  // namespace
}  // namespace edfkit
