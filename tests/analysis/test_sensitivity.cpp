#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/all_approx.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(MaxWcetScaling, InfeasibleInputGivesNothing) {
  const TaskSet bad = set_of({tk(9, 8, 8)});
  EXPECT_FALSE(max_wcet_scaling(bad).has_value());
}

TaskSet scale_exact(const TaskSet& ts, Int128 num, Int128 den) {
  // Mirror of the library's floor scaling C' = max(1, floor(C*num/den)).
  TaskSet out;
  for (Task t : ts) {
    t.wcet = std::max<Time>(
        1, narrow_time(static_cast<Int128>(t.wcet) * num / den));
    out.add(std::move(t));
  }
  return out;
}

TEST(MaxWcetScaling, FactorIsFeasibleAndExactlyTight) {
  Rng rng(3);
  int checked = 0;
  for (int i = 0; i < 30 && checked < 10; ++i) {
    // draw_small_set can overshoot the requested utilization (tiny
    // periods, no repair pass) — skip draws that start out infeasible.
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.4, 0.7));
    const auto f = max_wcet_scaling(ts);
    if (!f.has_value()) {
      EXPECT_FALSE(all_approx_test(ts).feasible()) << ts.to_string();
      continue;
    }
    ++checked;
    const double factor = f->to_double();
    EXPECT_GE(factor, 1.0);
    // The reported factor must itself be feasible...
    EXPECT_TRUE(all_approx_test(scale_exact(ts, f->num(), f->den()))
                    .feasible())
        << ts.to_string() << " factor " << factor;
    // ...and one search-grid step above it infeasible (binary-search
    // tightness), unless the search saturated at its 2/U range cap.
    if (factor < 1.9 / ts.utilization_double()) {
      const Int128 grid = Int128{1} << 30;
      const Int128 num_plus = f->num() * (grid / f->den()) + 1;
      EXPECT_FALSE(
          all_approx_test(scale_exact(ts, num_plus, grid)).feasible())
          << ts.to_string() << " factor " << factor;
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(MinProcessorSpeed, KnownValues) {
  // Single task C=4, D=5, T=10: peak dbf/I is 4/5 at I=5
  // (later deadlines: 8/15, 12/25 ... all smaller).
  const TaskSet ts = set_of({tk(4, 5, 10)});
  const Rational s = min_processor_speed(ts);
  EXPECT_EQ(s.compare(Rational(4, 5)), Ordering::Equal);
}

TEST(MinProcessorSpeed, InfeasibleSetNeedsMoreThanUnitSpeed) {
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  EXPECT_TRUE(min_processor_speed(bad).certainly_gt(Time{1}));
  const TaskSet good = set_of({tk(2, 6, 8), tk(3, 10, 12)});
  EXPECT_TRUE(min_processor_speed(good).certainly_le(Time{1}));
}

TEST(MinProcessorSpeed, AtLeastUtilization) {
  Rng rng(17);
  for (int i = 0; i < 15; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.4, 1.0));
    const Rational s = min_processor_speed(ts);
    EXPECT_FALSE(ts.utilization().certainly_gt(s)) << ts.to_string();
  }
}

TEST(MinProcessorSpeed, DominatesEveryDemandRatio) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.0));
    const Rational s = min_processor_speed(ts);
    for (Time interval = 1; interval <= 300; ++interval) {
      const Rational ratio(dbf(ts, interval), interval);
      EXPECT_FALSE(ratio.certainly_gt(s))
          << ts.to_string() << " at I=" << interval;
    }
  }
}

TEST(TaskWcetSlack, KnownSet) {
  // Task 0 (C=2,D=6,T=8) with a light companion: slack is bounded by
  // its deadline (C <= D) and by global feasibility.
  const TaskSet ts = set_of({tk(2, 6, 8), tk(1, 12, 12)});
  const auto slack = task_wcet_slack(ts, 0);
  ASSERT_TRUE(slack.has_value());
  EXPECT_GT(*slack, 0);
  // Adding exactly `slack` stays feasible; one more tick fails (or the
  // deadline cap was hit).
  TaskSet grown;
  grown.add(tk(2 + *slack, 6, 8));
  grown.add(tk(1, 12, 12));
  EXPECT_TRUE(all_approx_test(grown).feasible());
  EXPECT_LE(2 + *slack, 6);
}

TEST(TaskWcetSlack, InfeasibleInput) {
  const TaskSet bad = set_of({tk(9, 8, 8)});
  EXPECT_FALSE(task_wcet_slack(bad, 0).has_value());
  EXPECT_THROW((void)task_wcet_slack(bad, 5), std::invalid_argument);
}

TEST(MinFeasibleDeadline, ShrinksToWcetWhenAlone) {
  const TaskSet ts = set_of({tk(3, 10, 12)});
  const auto d = min_feasible_deadline(ts, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 3);  // C itself: dbf(3) = 3 <= 3
}

TEST(MinFeasibleDeadline, RespectsInterference) {
  const TaskSet ts = set_of({tk(4, 8, 8), tk(3, 12, 12)});
  const auto d = min_feasible_deadline(ts, 1);
  ASSERT_TRUE(d.has_value());
  // Task 1 needs room for task 0's first job too: dbf must fit.
  TaskSet tightened;
  tightened.add(tk(4, 8, 8));
  tightened.add(tk(3, *d, 12));
  EXPECT_TRUE(all_approx_test(tightened).feasible());
  if (*d > 3) {
    TaskSet too_tight;
    too_tight.add(tk(4, 8, 8));
    too_tight.add(tk(3, *d - 1, 12));
    EXPECT_FALSE(all_approx_test(too_tight).feasible());
  }
}

TEST(MinFeasibleDeadline, InfeasibleInput) {
  const TaskSet bad = set_of({tk(9, 8, 8)});
  EXPECT_FALSE(min_feasible_deadline(bad, 0).has_value());
}

}  // namespace
}  // namespace edfkit
