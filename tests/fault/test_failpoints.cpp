/// \file test_failpoints.cpp
/// Unit tests for the fault-injection registry (src/fault): every
/// trigger mode's firing schedule, errno selection, the short-write
/// parameter, hit/fire counters, the EDFKIT_FAULTS spec grammar
/// (accepted and rejected forms), environment configuration, and the
/// EDFKIT_FAULT_POINT macro's registry identity.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

namespace edfkit::fault {
namespace {

/// Every test starts and ends fully disarmed — the registry is
/// process-global, so leakage between tests would make schedules
/// order-dependent.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FailPointTest, DisarmedByDefault) {
  FailPoint& fp = point("test.default");
  EXPECT_FALSE(fp.armed());
  EXPECT_EQ(fp.mode(), Mode::Off);
  EXPECT_FALSE(fp.consume().fire);
}

TEST_F(FailPointTest, OnceFiresExactlyOnce) {
  FailPoint& fp = point("test.once");
  fp.reset_counters();
  fp.arm(Mode::Once);
  EXPECT_TRUE(fp.armed());
  EXPECT_TRUE(fp.consume().fire);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fp.consume().fire);
  EXPECT_EQ(fp.hits(), 11u);
  EXPECT_EQ(fp.fires(), 1u);
}

TEST_F(FailPointTest, EveryNFiresOnMultiples) {
  FailPoint& fp = point("test.every");
  fp.reset_counters();
  fp.arm(Mode::EveryN, /*n=*/3);
  for (int hit = 1; hit <= 9; ++hit) {
    EXPECT_EQ(fp.consume().fire, hit % 3 == 0) << "hit " << hit;
  }
  EXPECT_EQ(fp.fires(), 3u);
}

TEST_F(FailPointTest, EveryOneFiresAlways) {
  FailPoint& fp = point("test.every1");
  fp.arm(Mode::EveryN, /*n=*/1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fp.consume().fire);
}

TEST_F(FailPointTest, AfterNFiresOnEveryHitPastN) {
  FailPoint& fp = point("test.after");
  fp.reset_counters();
  fp.arm(Mode::AfterN, /*n=*/4);
  for (int hit = 1; hit <= 8; ++hit) {
    EXPECT_EQ(fp.consume().fire, hit > 4) << "hit " << hit;
  }
  EXPECT_EQ(fp.fires(), 4u);
}

TEST_F(FailPointTest, RearmingRestartsTheHitOrigin) {
  // `once` means once per arming, not once per process: the hit index
  // is measured from the arm() call.
  FailPoint& fp = point("test.rearm");
  fp.arm(Mode::Once);
  EXPECT_TRUE(fp.consume().fire);
  EXPECT_FALSE(fp.consume().fire);
  fp.arm(Mode::Once);
  EXPECT_TRUE(fp.consume().fire);
  EXPECT_FALSE(fp.consume().fire);
}

TEST_F(FailPointTest, RandomScheduleIsSeedDeterministic) {
  FailPoint& fp = point("test.prob");
  fp.arm(Mode::Random, 1, /*probability=*/0.5, /*seed=*/42);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(fp.consume().fire);
  fp.arm(Mode::Random, 1, 0.5, 42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fp.consume().fire, first[static_cast<std::size_t>(i)])
        << "draw " << i;
  }
  // A fair-ish coin over 64 draws fires at least once and misses at
  // least once.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FailPointTest, RandomProbabilityExtremes) {
  FailPoint& fp = point("test.prob.extreme");
  fp.arm(Mode::Random, 1, /*probability=*/1.0, /*seed=*/7);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(fp.consume().fire);
  fp.arm(Mode::Random, 1, /*probability=*/0.0, /*seed=*/7);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(fp.consume().fire);
}

TEST_F(FailPointTest, FiringCarriesErrnoAndShortLen) {
  FailPoint& fp = point("test.payload");
  fp.arm(Mode::Once, 1, 0.0, 1, ENOSPC, /*short_len=*/3);
  const FaultResult r = fp.consume();
  EXPECT_TRUE(r.fire);
  EXPECT_EQ(r.err, ENOSPC);
  EXPECT_EQ(r.short_len, 3u);
}

TEST_F(FailPointTest, ShouldFailSetsErrno) {
  FailPoint& fp = point("test.errno");
  fp.arm(Mode::Once, 1, 0.0, 1, ENOSPC);
  errno = 0;
  EXPECT_TRUE(fp.should_fail());
  EXPECT_EQ(errno, ENOSPC);
  errno = 0;
  EXPECT_FALSE(fp.should_fail());  // exhausted; errno untouched
  EXPECT_EQ(errno, 0);
}

TEST_F(FailPointTest, MacroCachesTheRegistryEntry) {
  FailPoint& a = EDFKIT_FAULT_POINT("test.macro");
  FailPoint& b = EDFKIT_FAULT_POINT("test.macro");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a, &point("test.macro"));
  EXPECT_EQ(a.name(), "test.macro");
}

TEST_F(FailPointTest, ListIsNameOrderedAndStable) {
  (void)point("test.list.b");
  (void)point("test.list.a");
  const std::vector<FailPoint*> all = list();
  const FailPoint* prev = nullptr;
  bool saw_a = false;
  bool saw_b = false;
  for (const FailPoint* fp : all) {
    if (prev != nullptr) EXPECT_LT(prev->name(), fp->name());
    saw_a |= fp->name() == "test.list.a";
    saw_b |= fp->name() == "test.list.b";
    prev = fp;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(FailPointTest, DisarmAllDisarmsEverything) {
  point("test.sweep.a").arm(Mode::Once);
  point("test.sweep.b").arm(Mode::EveryN, 2);
  disarm_all();
  EXPECT_FALSE(point("test.sweep.a").armed());
  EXPECT_FALSE(point("test.sweep.b").armed());
}

// ------------------------------------------------------- spec grammar

TEST_F(FailPointTest, ConfigureArmsMultipleEntries) {
  std::string err;
  ASSERT_TRUE(configure(
      "test.cfg.a=once,errno=ENOSPC;"
      "test.cfg.b=every,n=3,errno=71;"
      "test.cfg.c=prob,p=1,seed=9,short=4",
      &err))
      << err;

  FailPoint& a = point("test.cfg.a");
  EXPECT_EQ(a.mode(), Mode::Once);
  errno = 0;
  EXPECT_TRUE(a.should_fail());
  EXPECT_EQ(errno, ENOSPC);

  FailPoint& b = point("test.cfg.b");
  EXPECT_EQ(b.mode(), Mode::EveryN);
  EXPECT_FALSE(b.consume().fire);
  EXPECT_FALSE(b.consume().fire);
  const FaultResult rb = b.consume();
  EXPECT_TRUE(rb.fire);
  EXPECT_EQ(rb.err, 71);  // numeric errno accepted

  FailPoint& c = point("test.cfg.c");
  EXPECT_EQ(c.mode(), Mode::Random);
  const FaultResult rc = c.consume();
  EXPECT_TRUE(rc.fire);  // p=1 always fires
  EXPECT_EQ(rc.short_len, 4u);
}

TEST_F(FailPointTest, ConfigureToleratesWhitespaceAndEmptyEntries) {
  ASSERT_TRUE(configure("  test.cfg.ws = once ; ; \n"));
  EXPECT_TRUE(point("test.cfg.ws").armed());
  EXPECT_TRUE(configure(""));  // empty spec arms nothing, succeeds
}

TEST_F(FailPointTest, ConfigureOffDisarms) {
  point("test.cfg.off").arm(Mode::Once);
  ASSERT_TRUE(configure("test.cfg.off=off"));
  EXPECT_FALSE(point("test.cfg.off").armed());
}

TEST_F(FailPointTest, ConfigureRejectsMalformedSpecs) {
  const char* bad[] = {
      "noequals",                  // no NAME=MODE shape
      "test.bad=warp",             // unknown mode
      "test.bad=once,bogus=1",     // unknown key
      "test.bad=every,n=abc",      // non-numeric value
      "test.bad=once,errno=EWHAT", // unknown errno name
      "test.bad=once,errno",       // key without value
  };
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(configure(spec, &err)) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST_F(FailPointTest, ConfigureKeepsEntriesBeforeTheMalformedOne) {
  std::string err;
  EXPECT_FALSE(configure("test.cfg.keep=once; test.bad=warp", &err));
  EXPECT_TRUE(point("test.cfg.keep").armed());
  EXPECT_FALSE(err.empty());
}

TEST_F(FailPointTest, ConfigureFromEnvArmsAndCounts) {
  ASSERT_EQ(::setenv("EDFKIT_FAULTS", "test.env.a=once;test.env.b=every,n=2",
                     1),
            0);
  EXPECT_EQ(configure_from_env(), 2u);
  EXPECT_TRUE(point("test.env.a").armed());
  EXPECT_TRUE(point("test.env.b").armed());
  ASSERT_EQ(::unsetenv("EDFKIT_FAULTS"), 0);
  disarm_all();
  EXPECT_EQ(configure_from_env(), 0u);  // unset: no-op
}

TEST_F(FailPointTest, PersistSiteListHasNoDuplicates) {
  std::vector<std::string> names(std::begin(kPersistSites),
                                 std::end(kPersistSites));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace edfkit::fault
