/// \file test_fault_sites.cpp
/// Parameterized recover-or-clean-tear sweep over every persist-layer
/// failpoint (fault::kPersistSites): arm each site fail-once — with a
/// clean error and, on write sites, with a genuine short write — drive
/// a full durable-tenant lifecycle into it, and assert the on-disk
/// artifacts recover completely once the fault clears. Then the
/// server-level failure domain: a PersistError quarantines exactly one
/// tenant (Unavailable + retry hint, STATS still served), the
/// background re-probe clears a retryable quarantine, and a fatal
/// (poisoned-journal) quarantine stays dark.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "helpers.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/tenant.hpp"
#include "obs/obs.hpp"
#include "persist/format.hpp"
#include "persist/tailer.hpp"

namespace edfkit::net {
namespace {

using edfkit::testing::tk;

std::string temp_dir() {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("edfkit_fault_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TenantOptions durable_opts(const std::string& dir) {
  TenantOptions opts;
  opts.data_dir = dir;
  opts.checkpoint_every = 4;  // 10-op lifecycle checkpoints twice
  return opts;
}

/// What one lifecycle attempt observed.
struct Outcome {
  std::size_t applied = 0;   ///< ops that completed in memory
  std::size_t admitted = 0;  ///< of those, admits that said yes
  bool faulted = false;
  std::string what;
};

/// One full durable-tenant lifecycle against `dir`: open (create or
/// recover), ten journaled admits with periodic checkpoints, a final
/// flush, then a tail-back of the journal (the replication shipper's
/// read path — its journal.tail.* sites are part of the sweep). A
/// PersistError anywhere stops the run (the server-level analogue is
/// quarantine); the outcome records how far it got.
Outcome run_lifecycle(const std::string& dir) {
  Outcome out;
  const TenantOptions opts = durable_opts(dir);
  try {
    Tenant t("t", opts, persist::FsyncPolicy::EveryRecord, 1,
             /*certified=*/false, /*obs=*/nullptr);
    for (int i = 0; i < 10; ++i) {
      const Time span = static_cast<Time>(8 * (i + 1));
      const AdmissionDecision d = t.controller().try_admit(tk(1, span, span));
      ++out.applied;
      if (d.admitted) ++out.admitted;
      t.on_operation();
    }
    t.flush();
    persist::JournalTailer tail(dir + "/t.wal", t.journal_base_lsn());
    persist::TailedRecord rec;
    while (tail.poll(rec) == persist::TailStatus::Record) {
    }
  } catch (const persist::PersistError& e) {
    out.faulted = true;
    out.what = e.what();
  }
  return out;
}

/// Append a few garbage bytes to the journal — the crash-mid-append
/// shape: shorter than a record frame header, so the scan reports a
/// torn tail (never corruption) and open_append truncates it.
void tear_journal_tail(const std::string& dir) {
  std::ofstream f(dir + "/t.wal",
                  std::ios::binary | std::ios::app);
  ASSERT_TRUE(f.good());
  const char junk[] = {0x7f, 0x11, 0x22, 0x33, 0x44, 0x55};
  f.write(junk, sizeof junk);
}

/// Arm `site` fail-once and drive the lifecycle into it; after the
/// fault clears, the artifacts must recover and serve a full clean
/// lifecycle. `err` is the injected errno; `short_len` tears writes
/// mid-frame on sites that honor it.
void check_site_recovers(const std::string& site, int err,
                         std::size_t short_len) {
  fault::disarm_all();
  const std::string dir = temp_dir();

  // The open-path sites only run against existing artifacts; seed them
  // with one clean lifecycle. journal.open.truncate additionally needs
  // a torn tail to truncate.
  const bool reopen_site = site.rfind("journal.open.", 0) == 0;
  if (reopen_site) {
    const Outcome seed = run_lifecycle(dir);
    ASSERT_FALSE(seed.faulted) << seed.what;
    tear_journal_tail(dir);
  }
  // truncate_back only runs while rolling back a failed append — arm
  // the write to fail mid-frame so the rollback path executes.
  if (site == "journal.append.truncate_back") {
    fault::point("journal.append.write")
        .arm(fault::Mode::Once, 1, 0.0, 1, err, /*short_len=*/3);
  }
  fault::FailPoint& fp = fault::point(site);
  fp.reset_counters();
  fp.arm(fault::Mode::Once, 1, 0.0, 1, err, short_len);

  const Outcome faulted = run_lifecycle(dir);
  EXPECT_GE(fp.fires(), 1u) << site << ": the lifecycle never reached it";
  // Fail-once means at most the faulted op is lost; everything the run
  // applied before the fault stayed applied.
  EXPECT_LE(faulted.applied, 10u);

  // The invariant under test: once the fault clears, the artifacts are
  // recoverable — reopening never throws and a full lifecycle serves.
  fault::disarm_all();
  const Outcome recovered = run_lifecycle(dir);
  EXPECT_FALSE(recovered.faulted)
      << site << " left unrecoverable artifacts: " << recovered.what;
  EXPECT_EQ(recovered.applied, 10u) << site;

  std::filesystem::remove_all(dir);
}

class PersistSiteTest : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_P(PersistSiteTest, FailOnceEnospcRecovers) {
  check_site_recovers(GetParam(), ENOSPC,
                      /*short_len=*/static_cast<std::size_t>(-1));
}

TEST_P(PersistSiteTest, FailOnceEioShortWriteRecovers) {
  // short=3 tears write sites mid-frame (a genuine torn tail on disk);
  // non-write sites ignore it.
  check_site_recovers(GetParam(), EIO, /*short_len=*/3);
}

INSTANTIATE_TEST_SUITE_P(AllPersistSites, PersistSiteTest,
                         ::testing::ValuesIn(fault::kPersistSites),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------- server failure domain

NetStatus status_of(const NetResponse& r) {
  return static_cast<NetStatus>(r.hdr.status);
}

void pump(Server& server, int ticks = 4) {
  for (int i = 0; i < ticks; ++i) (void)server.poll_once(10);
}

NetResponse round_trip(Server& server, Client& client, NetRequest req) {
  client.send(std::move(req));
  pump(server);
  return client.receive();
}

NetRequest hello_durable(const std::string& tenant) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Hello);
  req.tenant = tenant;
  req.durability =
      static_cast<std::uint8_t>(persist::FsyncPolicy::EveryRecord);
  req.fsync_interval = 1;
  return req;
}

NetRequest admit_request(const Task& t) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  req.task = t;
  return req;
}

class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(QuarantineTest, RetryableFaultRoundTrip) {
  const std::string dir = temp_dir();
  obs::Obs obs;
  ServerOptions so;
  so.tenants.data_dir = dir;
  so.reprobe_interval_ms = 30;
  Server server(so, &obs);
  Client client = Client::connect("127.0.0.1", server.port());

  ASSERT_EQ(status_of(round_trip(server, client, hello_durable("t"))),
            NetStatus::Ok);
  ASSERT_EQ(status_of(round_trip(server, client, admit_request(tk(1, 8, 8)))),
            NetStatus::Ok);

  // An injected fsync failure on the next journaled admit: retryable
  // (the record is in the page cache; recovery replays it if it
  // reached disk), so the tenant quarantines and re-probes back.
  fault::point("journal.append.fsync").arm(fault::Mode::Once);
  const NetResponse u =
      round_trip(server, client, admit_request(tk(1, 16, 16)));
  EXPECT_EQ(status_of(u), NetStatus::Unavailable);
  EXPECT_EQ(u.retry_after_ms, 30u);

  Tenant* t = server.tenants().find("t");
  ASSERT_NE(t, nullptr);
  auto& reg = obs.registry();
  EXPECT_EQ(reg.counter_value("net_tenant_quarantines_total"), 1u);
  EXPECT_EQ(reg.counter_value("net_unavailable_total"), 1u);

  // Read-only ops keep serving regardless of quarantine state.
  NetRequest stats;
  stats.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
  EXPECT_EQ(status_of(round_trip(server, client, std::move(stats))),
            NetStatus::Ok);

  // The re-probe timer is free-running, so the recovery may already
  // have happened inside a pump above; just drive ticks until it does.
  for (int i = 0; i < 100 && t->quarantined(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pump(server, 1);
  }
  EXPECT_FALSE(t->quarantined());
  EXPECT_EQ(reg.counter_value("net_tenant_unquarantines_total"), 1u);

  // The faulted admit was journaled before its fsync failed, so the
  // full recovery replay applied it: two residents, and the next admit
  // makes three.
  const NetResponse a3 =
      round_trip(server, client, admit_request(tk(1, 32, 32)));
  ASSERT_EQ(status_of(a3), NetStatus::Ok);
  NetRequest stats2;
  stats2.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
  const NetResponse s = round_trip(server, client, std::move(stats2));
  EXPECT_EQ(s.stats.residents, 3u);

  std::filesystem::remove_all(dir);
}

TEST_F(QuarantineTest, FaultIsIsolatedToOneTenant) {
  const std::string dir = temp_dir();
  obs::Obs obs;
  ServerOptions so;
  so.tenants.data_dir = dir;
  so.reprobe_interval_ms = 0;  // no auto-recovery: pin the quarantine
  Server server(so, &obs);
  Client ca = Client::connect("127.0.0.1", server.port());
  Client cb = Client::connect("127.0.0.1", server.port());

  ASSERT_EQ(status_of(round_trip(server, ca, hello_durable("a"))),
            NetStatus::Ok);
  ASSERT_EQ(status_of(round_trip(server, cb, hello_durable("b"))),
            NetStatus::Ok);

  // Fail-once fires on tenant a's next append; b's traffic never sees
  // the armed point.
  fault::point("journal.append.fsync").arm(fault::Mode::Once);
  EXPECT_EQ(status_of(round_trip(server, ca, admit_request(tk(1, 8, 8)))),
            NetStatus::Unavailable);
  EXPECT_EQ(status_of(round_trip(server, cb, admit_request(tk(1, 8, 8)))),
            NetStatus::Ok);

  EXPECT_TRUE(server.tenants().find("a")->quarantined());
  EXPECT_TRUE(server.tenants().find("a")->quarantine_retryable());
  EXPECT_FALSE(server.tenants().find("b")->quarantined());

  // a stays Unavailable (no re-probe), b keeps serving.
  EXPECT_EQ(status_of(round_trip(server, ca, admit_request(tk(1, 16, 16)))),
            NetStatus::Unavailable);
  EXPECT_EQ(status_of(round_trip(server, cb, admit_request(tk(1, 16, 16)))),
            NetStatus::Ok);

  std::filesystem::remove_all(dir);
}

TEST_F(QuarantineTest, PoisonedJournalQuarantineIsNotRetried) {
  const std::string dir = temp_dir();
  obs::Obs obs;
  ServerOptions so;
  so.tenants.data_dir = dir;
  so.reprobe_interval_ms = 10;
  Server server(so, &obs);
  Client client = Client::connect("127.0.0.1", server.port());

  ASSERT_EQ(status_of(round_trip(server, client, hello_durable("t"))),
            NetStatus::Ok);

  // A torn append whose rollback also fails poisons the journal handle
  // — classified fatal, so the re-probe loop must leave it alone.
  fault::point("journal.append.write")
      .arm(fault::Mode::Once, 1, 0.0, 1, EIO, /*short_len=*/3);
  fault::point("journal.append.truncate_back").arm(fault::Mode::Once);
  EXPECT_EQ(status_of(round_trip(server, client, admit_request(tk(1, 8, 8)))),
            NetStatus::Unavailable);

  Tenant* t = server.tenants().find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->quarantined());
  EXPECT_FALSE(t->quarantine_retryable());
  EXPECT_FALSE(t->quarantine_reason().empty());

  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  pump(server);
  EXPECT_TRUE(t->quarantined());  // still dark: fatal quarantines hold
  auto& reg = obs.registry();
  EXPECT_EQ(reg.counter_value("net_tenant_unquarantines_total"), 0u);
  EXPECT_EQ(reg.counter_value("net_tenant_reprobe_failures_total"), 0u);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace edfkit::net
