#include "rtc/rtc_feas.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "util/random.hpp"

namespace edfkit::rtc {
namespace {

using edfkit::testing::set_of;
using edfkit::testing::tk;

TEST(RtcFeas, AcceptsLightLoad) {
  const TaskSet ts = set_of({tk(1, 8, 10), tk(1, 16, 20)});
  EXPECT_EQ(rtc_feasibility_test(ts).verdict, Verdict::Feasible);
  EXPECT_EQ(devi_envelope_test(ts).verdict, Verdict::Feasible);
}

TEST(RtcFeas, OverloadIsInfeasible) {
  EXPECT_EQ(rtc_feasibility_test(set_of({tk(9, 8, 8)})).verdict,
            Verdict::Infeasible);
}

TEST(RtcFeas, EmptySetFeasible) {
  EXPECT_EQ(rtc_feasibility_test(TaskSet{}).verdict, Verdict::Feasible);
}

TEST(RtcFeas, RtcStrictlyWeakerExample) {
  // Deadline-sensitive set: Devi's envelope (anchored at D) accepts,
  // the RTC one (anchored at 0) does not.
  const TaskSet ts = set_of({tk(4, 9, 10), tk(1, 20, 20)});
  EXPECT_EQ(devi_test(ts).verdict, Verdict::Feasible);
  EXPECT_EQ(rtc_feasibility_test(ts).verdict, Verdict::Unknown);
}

/// Paper §3.6 ordering on random workloads:
///   RTC accepted  =>  Devi-envelope accepted  =>  Devi accepted
///   and every acceptance is sound against the exact test.
class RtcOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtcOrdering, AcceptanceChain) {
  Rng rng(GetParam() + 7);
  for (int i = 0; i < 40; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.4, 1.0));
    const bool rtc_ok = rtc_feasibility_test(ts).feasible();
    const bool devi_env_ok = devi_envelope_test(ts).feasible();
    const bool devi_ok = devi_test(ts).feasible();
    if (rtc_ok) {
      EXPECT_TRUE(devi_env_ok) << ts.to_string();
    }
    if (devi_env_ok) {
      EXPECT_TRUE(devi_ok) << ts.to_string();
    }
    if (rtc_ok || devi_env_ok) {
      EXPECT_EQ(processor_demand_test(ts).verdict, Verdict::Feasible)
          << ts.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtcOrdering,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace edfkit::rtc
