#include "rtc/curve.hpp"

#include <gtest/gtest.h>

namespace edfkit::rtc {
namespace {

TEST(Curve, RejectsEmpty) {
  EXPECT_THROW(ConcaveCurve(std::vector<AffineLine>{}),
               std::invalid_argument);
}

TEST(Curve, EvalIsMinOfLines) {
  const ConcaveCurve c({{0.0, 2.0}, {10.0, 0.5}});
  EXPECT_DOUBLE_EQ(c.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.eval(4.0), 8.0);
  // Crossover at x = 10/1.5 = 6.666...
  EXPECT_DOUBLE_EQ(c.eval(10.0), 15.0);
  EXPECT_DOUBLE_EQ(c.eval(100.0), 60.0);
}

TEST(Curve, SimplifyDropsDominatedLines) {
  // The middle line is everywhere above min(l1, l3): it must vanish.
  const ConcaveCurve c({{0.0, 3.0}, {50.0, 2.0}, {10.0, 1.0}});
  EXPECT_EQ(c.lines().size(), 2u);
  EXPECT_DOUBLE_EQ(c.eval(5.0), 15.0);
  EXPECT_DOUBLE_EQ(c.eval(20.0), 30.0);
}

TEST(Curve, SimplifyKeepsSmallestOffsetOnEqualSlopes) {
  const ConcaveCurve c({{5.0, 1.0}, {3.0, 1.0}});
  ASSERT_EQ(c.lines().size(), 1u);
  EXPECT_DOUBLE_EQ(c.lines()[0].offset, 3.0);
}

TEST(Curve, BreakpointsAtLineIntersections) {
  const ConcaveCurve c({{0.0, 2.0}, {10.0, 0.5}});
  const auto bps = c.breakpoints();
  ASSERT_EQ(bps.size(), 2u);
  EXPECT_DOUBLE_EQ(bps[0], 0.0);
  EXPECT_NEAR(bps[1], 10.0 / 1.5, 1e-12);
}

TEST(Curve, AsymptoticSlopeIsSmallest) {
  const ConcaveCurve c({{0.0, 2.0}, {10.0, 0.5}});
  EXPECT_DOUBLE_EQ(c.asymptotic_slope(), 0.5);
}

TEST(CurveSum, EvalAndSlopeAdd) {
  CurveSum sum;
  sum.add(ConcaveCurve({{1.0, 0.25}}));
  sum.add(ConcaveCurve({{2.0, 0.5}}));
  EXPECT_DOUBLE_EQ(sum.eval(4.0), (1.0 + 1.0) + (2.0 + 2.0));
  EXPECT_DOUBLE_EQ(sum.asymptotic_slope(), 0.75);
}

TEST(CurveSum, BelowCapacityLineDecidesCorrectly) {
  // Demand 0.5 + 0.25*I: below I for I > 2/3... fails near 0 though:
  // at I=0 the demand 0.5 > 0 -> not below the line.
  CurveSum heavy;
  heavy.add(ConcaveCurve({{0.5, 0.25}}));
  EXPECT_FALSE(heavy.below_capacity_line());

  // Slope > 1 always fails.
  CurveSum steep;
  steep.add(ConcaveCurve({{0.0, 1.5}}));
  EXPECT_FALSE(steep.below_capacity_line());

  // A line through the origin with slope <= 1 fits.
  CurveSum ok;
  ok.add(ConcaveCurve({{0.0, 0.75}}));
  EXPECT_TRUE(ok.below_capacity_line());

  // Empty sum trivially fits.
  EXPECT_TRUE(CurveSum{}.below_capacity_line());
}

TEST(CurveSum, BreakpointsAreUnionDeduplicated) {
  CurveSum sum;
  sum.add(ConcaveCurve({{0.0, 2.0}, {10.0, 0.5}}));
  sum.add(ConcaveCurve({{0.0, 3.0}, {10.0, 1.5}}));  // same x* = 20/3
  const auto bps = sum.breakpoints();
  // {0, 6.67} from both (dedup): expect exactly two distinct points.
  EXPECT_EQ(bps.size(), 2u);
}

TEST(Curve, ToStringMentionsEveryLine) {
  const ConcaveCurve c({{1.0, 2.0}, {30.0, 0.25}});
  const std::string s = c.to_string();
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace edfkit::rtc
