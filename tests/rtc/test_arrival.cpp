#include "rtc/arrival.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit::rtc {
namespace {

using edfkit::testing::tk;

TEST(Arrival, PeriodicCurveDominatesDbf) {
  const Task t = tk(3, 8, 10);
  const ConcaveCurve c = rtc_demand_periodic(t);
  for (Time i = 0; i <= 300; ++i) {
    EXPECT_GE(c.eval(static_cast<double>(i)) + 1e-9,
              static_cast<double>(dbf(t, i)))
        << "interval " << i;
  }
}

TEST(Arrival, DeviEnvelopeDominatesDbfAndIsTighterThanRtc) {
  const Task t = tk(3, 8, 10);
  const ConcaveCurve devi = devi_demand_envelope(t);
  const ConcaveCurve rtc = rtc_demand_periodic(t);
  for (Time i = 0; i <= 300; i += 2) {
    const double x = static_cast<double>(i);
    EXPECT_GE(devi.eval(x) + 1e-9, static_cast<double>(dbf(t, i)));
    // §3.6: the RTC approximation is "a bit worse" — by C*D/T.
    EXPECT_NEAR(rtc.eval(x) - devi.eval(x),
                3.0 * 8.0 / 10.0, 1e-9);
  }
}

TEST(Arrival, OneShotCurvesAreFlat) {
  const Task t = tk(4, 9, kTimeInfinity);
  EXPECT_DOUBLE_EQ(rtc_demand_periodic(t).eval(1000.0), 4.0);
  EXPECT_DOUBLE_EQ(devi_demand_envelope(t).eval(1000.0), 4.0);
}

TEST(Arrival, BurstyCurveValidation) {
  EXPECT_THROW((void)rtc_demand_bursty(100, 0, 5, 2, 10),
               std::invalid_argument);
  EXPECT_THROW((void)rtc_demand_bursty(100, 3, 0, 2, 10),
               std::invalid_argument);
  EXPECT_THROW((void)rtc_demand_bursty(100, 30, 5, 2, 10),
               std::invalid_argument);
}

TEST(Arrival, BurstyCurveDominatesStreamDemand) {
  const Time period = 200, blen = 4, gap = 5, c = 8, d = 40;
  const ConcaveCurve curve = rtc_demand_bursty(period, blen, gap, c, d);
  EventStreamTask et{EventStream::bursty(period, blen, gap), c, d, "b"};
  for (Time i = 0; i <= 1000; ++i) {
    EXPECT_GE(curve.eval(static_cast<double>(i)) + 1e-9,
              static_cast<double>(et.dbf(i)))
        << "interval " << i;
  }
}

TEST(Arrival, BurstLineActiveNearOriginRateLineFar) {
  const ConcaveCurve curve = rtc_demand_bursty(1000, 5, 10, 2, 50);
  // Near 0 the burst line (slope C/gap = 0.2) governs; far out the rate
  // line (slope 5*2/1000 = 0.01) governs.
  EXPECT_NEAR(curve.eval(0.0), 2.0, 1e-12);
  EXPECT_NEAR(curve.eval(10'000.0), 10.0 + 0.01 * 10'000.0, 1e-9);
}

/// Property: both approximations stay above the exact staircase on
/// random tasks — the soundness requirement for any sufficient test
/// built from them.
class EnvelopeDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvelopeDominance, CurvesUpperBoundDbf) {
  Rng rng(GetParam());
  for (int rep = 0; rep < 20; ++rep) {
    const Time period = rng.uniform_time(5, 500);
    const Time wcet = rng.uniform_time(1, period);
    const Time deadline = rng.uniform_time(wcet, period);
    const Task t = tk(wcet, deadline, period);
    const ConcaveCurve rtc = rtc_demand_periodic(t);
    const ConcaveCurve devi = devi_demand_envelope(t);
    for (Time i = 0; i <= 4 * period; i += std::max<Time>(1, period / 7)) {
      const double x = static_cast<double>(i);
      EXPECT_GE(rtc.eval(x) + 1e-9, static_cast<double>(dbf(t, i)));
      EXPECT_GE(devi.eval(x) + 1e-9, static_cast<double>(dbf(t, i)));
      EXPECT_GE(rtc.eval(x) + 1e-9, devi.eval(x));  // RTC never tighter
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeDominance,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace edfkit::rtc
