/// \file test_snapshot.cpp
/// Durable admission state, snapshot half: save()/load() must restore a
/// store that makes *bit-identical* decisions to the original. The
/// centerpiece is a differential fuzz (>= 500 churn ops at U -> 1 with
/// group arrivals and removals) that repeatedly round-trips one
/// controller through disk while a never-persisted twin steps the same
/// trace — every decision and every published header field must match.
/// EDFKIT_FUZZ_MULT scales the depth (the nightly long-fuzz workflow
/// runs 20x).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "admission/replay.hpp"
#include "admission/snapshot.hpp"
#include "helpers.hpp"
#include "persist/format.hpp"

namespace edfkit {
namespace {

using testing::tk;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "edfkit_" + name + "_" +
         std::to_string(::getpid());
}

AdmissionOptions fuzz_options() {
  AdmissionOptions opts;
  opts.skip_exact = true;  // rung <= 2: pure incremental-store decisions
  return opts;
}

std::vector<TraceEvent> fuzz_trace(std::uint64_t seed, std::size_t events) {
  ChurnConfig churn;
  churn.warmup_arrivals = 40;
  churn.events = events;
  churn.pool_utilization = 0.99;  // ride the admission boundary
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = 40;
  churn.group_probability = 0.35;
  churn.group_size = 5;
  Rng rng(seed);
  return generate_churn_trace(rng, churn);
}

void expect_headers_equal(const StoreHeader& a, const StoreHeader& b,
                          const char* what) {
  // Epochs count publications per process and legitimately differ.
  EXPECT_EQ(a.residents, b.residents) << what;
  EXPECT_EQ(a.constrained, b.constrained) << what;
  EXPECT_EQ(a.live_checkpoints, b.live_checkpoints) << what;
  EXPECT_EQ(a.dead_checkpoints, b.dead_checkpoints) << what;
  EXPECT_EQ(a.segments, b.segments) << what;
  EXPECT_EQ(a.utilization, b.utilization) << what;
  EXPECT_EQ(a.cert_ratio, b.cert_ratio) << what;
}

/// Step one trace event against a controller, tracking key -> ids.
struct Stepper {
  AdmissionController* ctl;
  std::vector<std::pair<std::uint64_t, std::vector<TaskId>>> live;

  bool step(const TraceEvent& ev) {
    if (ev.op == TraceOp::Depart) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].first != ev.key) continue;
        (void)ctl->remove_group(live[i].second);
        live[i] = live.back();
        live.pop_back();
        break;
      }
      return true;
    }
    if (ev.op == TraceOp::Crash) return true;
    if (ev.op == TraceOp::ArriveGroup) {
      GroupDecision d = ctl->admit_group(ev.group);
      if (d.admitted) live.emplace_back(ev.key, std::move(d.ids));
      return d.admitted;
    }
    const AdmissionDecision d = ctl->try_admit(ev.task);
    if (d.admitted) live.emplace_back(ev.key, std::vector<TaskId>{d.id});
    return d.admitted;
  }
};

TEST(Snapshot, EmptyControllerRoundTrips) {
  const std::string path = temp_path("empty");
  AdmissionController a(fuzz_options());
  save_snapshot(a, path, 0);
  AdmissionController b;  // different default options get overwritten
  const SnapshotMeta meta = load_snapshot(b, path);
  EXPECT_EQ(meta.kind, SnapshotKind::Controller);
  EXPECT_EQ(meta.journal_lsn, 0u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.options().skip_exact);
  // Both decide the same arrival the same way.
  const Task t = tk(1, 4, 8);
  EXPECT_EQ(a.try_admit(t).admitted, b.try_admit(t).admitted);
  EXPECT_TRUE(b.verify_consistency());
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripRestoresStateBitExactly) {
  const std::string path = temp_path("roundtrip");
  AdmissionController live(fuzz_options());
  const std::vector<TraceEvent> trace = fuzz_trace(11, 400);
  Stepper s{&live, {}};
  for (const TraceEvent& ev : trace) (void)s.step(ev);
  ASSERT_GT(live.size(), 0u);

  save_snapshot(live, path, 123);
  AdmissionController loaded;
  const SnapshotMeta meta = load_snapshot(loaded, path);
  EXPECT_EQ(meta.journal_lsn, 123u);

  // Aggregates, options, stats, and per-id refinement levels all match.
  expect_headers_equal(live.demand_header(), loaded.demand_header(),
                       "after load");
  EXPECT_EQ(live.stats().to_string(), loaded.stats().to_string());
  EXPECT_EQ(live.options().epsilon, loaded.options().epsilon);
  const TaskSet a = live.snapshot();
  const TaskSet b = loaded.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "row " << i;
  }
  for (const auto& [key, ids] : s.live) {
    for (const TaskId id : ids) {
      ASSERT_NE(live.find(id), nullptr);
      ASSERT_NE(loaded.find(id), nullptr);
      EXPECT_TRUE(*live.find(id) == *loaded.find(id)) << "id " << id;
    }
  }
  // The loaded store's incremental aggregates equal a from-scratch
  // rebuild of its own rows — the strongest internal-consistency check.
  EXPECT_TRUE(loaded.verify_consistency());
  std::remove(path.c_str());
}

/// The acceptance fuzz: >= 500 churn ops at U -> 1 (groups + removals);
/// one controller round-trips through disk every ~90 events, the twin
/// never touches disk. Bit-identical decisions and headers throughout.
TEST(Snapshot, DifferentialFuzzRestoredVsNeverPersistedTwin) {
  const std::uint64_t mult = testing::fuzz_multiplier();
  const std::string path = temp_path("fuzz");
  const std::size_t events = 600 * static_cast<std::size_t>(mult);
  for (std::uint64_t seed : {3u, 17u}) {
    const std::vector<TraceEvent> trace = fuzz_trace(seed, events);
    auto persisted = std::make_unique<AdmissionController>(fuzz_options());
    AdmissionController twin(fuzz_options());
    Stepper sp{persisted.get(), {}};
    Stepper st{&twin, {}};
    std::size_t round_trips = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const bool dp = sp.step(trace[i]);
      const bool dt = st.step(trace[i]);
      if (dp != dt) {
        std::ostringstream repro;
        repro << "snapshot differential fuzz divergence\nseed=" << seed
              << " event=" << i << " persisted=" << dp << " twin=" << dt
              << "\n";
        testing::write_fuzz_artifact("snapshot_fuzz_divergence.txt",
                                     repro.str());
      }
      ASSERT_EQ(dp, dt) << "seed " << seed << " event " << i;
      expect_headers_equal(persisted->demand_header(), twin.demand_header(),
                           "mid-fuzz");
      if ((i + 1) % 89 == 0) {
        // Round-trip the persisted controller through disk and carry
        // on with the *loaded* store.
        save_snapshot(*persisted, path, 0);
        auto loaded = std::make_unique<AdmissionController>();
        (void)load_snapshot(*loaded, path);
        persisted = std::move(loaded);
        sp.ctl = persisted.get();
        ++round_trips;
      }
    }
    EXPECT_GT(round_trips, 4u) << "the fuzz must actually round-trip";
    EXPECT_GT(persisted->stats().rejected, 0u)
        << "U -> 1 churn must exercise rejects";
    EXPECT_TRUE(persisted->verify_consistency());
    EXPECT_TRUE(twin.verify_consistency());
    EXPECT_EQ(persisted->stats().to_string(), twin.stats().to_string());
  }
  std::remove(path.c_str());
}

/// Global admission mode (format v2's platform field): a controller
/// admitting against m processors must come back from disk *in* global
/// mode — same platform, same aggregates — and keep deciding
/// bit-identically to a never-persisted twin.
TEST(Snapshot, GlobalControllerRoundTripKeepsPlatformAndDecisions) {
  const std::string path = temp_path("global");
  AdmissionOptions opts = fuzz_options();
  opts.platform = Platform{2};
  AdmissionController live(opts);
  AdmissionController twin(opts);
  // Pool ~1.9 utilization: saturates the 2-processor platform, so the
  // trace exercises both global-ladder accepts past U = 1 and rejects.
  ChurnConfig churn;
  churn.warmup_arrivals = 40;
  churn.events = 300;
  churn.pool_utilization = 1.9;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = 40;
  churn.group_probability = 0.35;
  churn.group_size = 5;
  Rng rng(29);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);
  Stepper sl{&live, {}};
  Stepper st{&twin, {}};
  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_EQ(sl.step(trace[i]), st.step(trace[i])) << "event " << i;
  }
  ASSERT_GT(live.size(), 0u);

  save_snapshot(live, path, 5);
  AdmissionController loaded;  // uniprocessor defaults, overwritten by load
  (void)load_snapshot(loaded, path);
  EXPECT_EQ(loaded.options().platform.m, 2u)
      << "platform must survive the round trip";
  expect_headers_equal(live.demand_header(), loaded.demand_header(),
                       "after global-mode load");

  // Second half of the trace: the loaded store vs the never-persisted
  // twin, decision for decision. (Depart keys map through each
  // stepper's own id table, so the loaded controller reuses live's.)
  sl.ctl = &loaded;
  double max_utilization = 0.0;
  for (std::size_t i = half; i < trace.size(); ++i) {
    ASSERT_EQ(sl.step(trace[i]), st.step(trace[i]))
        << "post-load event " << i;
    expect_headers_equal(loaded.demand_header(), twin.demand_header(),
                         "post-load");
    max_utilization =
        std::max(max_utilization, loaded.demand_header().utilization);
  }
  // The restored controller must have admitted past uniprocessor
  // capacity — the evidence it really came back in global mode — and a
  // 1.9-utilization pool on m = 2 must also see rejects at the boundary.
  EXPECT_GT(max_utilization, 1.0);
  EXPECT_GT(loaded.stats().rejected, 0u);
  EXPECT_TRUE(loaded.verify_consistency());
  EXPECT_TRUE(twin.verify_consistency());
  std::remove(path.c_str());
}

TEST(Snapshot, CrashOpsResumeTransparently) {
  // TraceOp::Crash makes the persistence replay drop state and recover
  // in place; the decision stream must equal a crash-free replay of the
  // same trace.
  const std::string snap = temp_path("crash.snap");
  const std::string wal = temp_path("crash.wal");
  std::remove(snap.c_str());
  std::remove(wal.c_str());
  ChurnConfig churn;
  churn.warmup_arrivals = 30;
  churn.events = 500;
  churn.pool_utilization = 0.99;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = 30;
  churn.group_probability = 0.3;
  churn.group_size = 4;
  churn.crash_probability = 0.05;
  Rng rng(21);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);

  AdmissionController durable(fuzz_options());
  ReplayPersistence persistence;
  persistence.snapshot_path = snap;
  persistence.journal_path = wal;
  persistence.snapshot_every = 32;
  const ReplayStats a = replay_trace(trace, durable, persistence);

  AdmissionController plain(fuzz_options());
  const ReplayStats b = replay_trace(trace, plain);

  EXPECT_GT(a.crashes, 0u);  // the resume path actually ran
  EXPECT_GT(a.snapshots, 0u);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.by_rung, b.by_rung);
  expect_headers_equal(durable.demand_header(), plain.demand_header(),
                       "after crash/resume replay");
  EXPECT_TRUE(durable.verify_consistency());

  // Journal-only durability (no snapshot file ever): every crash is a
  // cold full-journal replay — recover() must reset the live state
  // first, not double-apply the records on top of it.
  std::remove(snap.c_str());
  std::remove(wal.c_str());
  AdmissionController journal_only(fuzz_options());
  ReplayPersistence wal_only;
  wal_only.journal_path = wal;
  const ReplayStats c = replay_trace(trace, journal_only, wal_only);
  EXPECT_GT(c.crashes, 0u);
  EXPECT_EQ(c.admitted, b.admitted);
  EXPECT_EQ(c.rejected, b.rejected);
  EXPECT_EQ(c.by_rung, b.by_rung);
  expect_headers_equal(journal_only.demand_header(), plain.demand_header(),
                       "after journal-only crash/resume replay");
  EXPECT_TRUE(journal_only.verify_consistency());
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

TEST(Snapshot, EngineRoundTripRestoresShards) {
  const std::string path = temp_path("engine");
  EngineOptions opts;
  opts.shards = 3;
  opts.placement = PlacementPolicy::WorstFit;
  opts.admission.skip_exact = true;
  AdmissionEngine engine(opts);
  Rng rng(5);
  std::vector<GlobalTaskId> placed;
  for (int round = 0; round < 6; ++round) {
    const TaskSet ts = draw_small_set(rng, 0.6);
    for (const Task& t : ts) {
      const PlacementDecision d = engine.admit(t);
      if (d.admitted) placed.push_back(d.id);
    }
  }
  for (std::size_t i = 0; i < placed.size(); i += 3) {
    (void)engine.remove(placed[i]);
  }
  ASSERT_GT(engine.stats().resident, 0u);

  save_snapshot(engine, path);
  EngineOptions stale;  // every option is overwritten by the load
  stale.shards = 1;
  AdmissionEngine restored(stale);
  const SnapshotMeta meta = load_snapshot(restored, path);
  EXPECT_EQ(meta.kind, SnapshotKind::Engine);
  ASSERT_EQ(restored.shards(), engine.shards());
  const EngineStats a = engine.stats_locked();
  const EngineStats b = restored.stats_locked();
  EXPECT_EQ(a.resident, b.resident);
  EXPECT_EQ(a.admission.to_string(), b.admission.to_string());
  EXPECT_EQ(a.shard_resident, b.shard_resident);
  for (std::size_t i = 0; i < engine.shards(); ++i) {
    const TaskSet sa = engine.shard_snapshot(i);
    const TaskSet sb = restored.shard_snapshot(i);
    ASSERT_EQ(sa.size(), sb.size()) << "shard " << i;
    for (std::size_t r = 0; r < sa.size(); ++r) {
      EXPECT_TRUE(sa[r] == sb[r]) << "shard " << i << " row " << r;
    }
    EXPECT_TRUE(restored.analyze_shard(i).feasible() ||
                sb.empty());  // the admission invariant survives disk
  }
  std::remove(path.c_str());
}

TEST(Snapshot, EngineJournalRecoveryRestoresResidents) {
  const std::string snap = temp_path("ej.snap");
  const std::string wal = temp_path("ej.wal");
  std::remove(snap.c_str());
  std::remove(wal.c_str());
  EngineOptions opts;
  opts.shards = 2;
  opts.admission.skip_exact = true;
  persist::Journal journal = persist::Journal::create(wal);
  std::vector<GlobalTaskId> placed;
  {
    AdmissionEngine engine(opts);
    engine.attach_journal(&journal);
    Rng rng(9);
    for (int round = 0; round < 4; ++round) {
      const TaskSet ts = draw_small_set(rng, 0.5);
      std::vector<Task> group(ts.begin(), ts.end());
      const GroupPlacement g = engine.admit_group(group);
      if (g.admitted) {
        placed.insert(placed.end(), g.ids.begin(), g.ids.end());
      }
      if (round == 1) save_snapshot(engine, snap, &journal);
      if (!placed.empty() && round >= 2) {
        (void)engine.remove(placed.front());
        placed.erase(placed.begin());
      }
    }
    engine.attach_journal(nullptr);

    EngineOptions stale;
    stale.shards = 1;
    AdmissionEngine restored(stale);
    const RecoveryResult rec = recover(restored, snap, wal);
    EXPECT_TRUE(rec.snapshot_loaded);
    EXPECT_GT(rec.replayed, 0u);
    EXPECT_EQ(rec.skipped, 0u);
    const EngineStats a = engine.stats_locked();
    const EngineStats b = restored.stats_locked();
    EXPECT_EQ(a.resident, b.resident);
    EXPECT_EQ(a.shard_resident, b.shard_resident);
    for (std::size_t i = 0; i < engine.shards(); ++i) {
      const TaskSet sa = engine.shard_snapshot(i);
      const TaskSet sb = restored.shard_snapshot(i);
      ASSERT_EQ(sa.size(), sb.size()) << "shard " << i;
      for (std::size_t r = 0; r < sa.size(); ++r) {
        EXPECT_TRUE(sa[r] == sb[r]) << "shard " << i << " row " << r;
      }
    }
  }
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

TEST(Snapshot, KindMismatchAndGarbageAreTypedErrors) {
  const std::string path = temp_path("kind");
  AdmissionController ctl;
  save_snapshot(ctl, path, 0);
  EngineOptions eopts;
  eopts.shards = 1;
  AdmissionEngine engine(eopts);
  try {
    (void)load_snapshot(engine, path);
    FAIL() << "controller snapshot loaded as engine";
  } catch (const persist::PersistError& e) {
    EXPECT_EQ(e.code(), persist::PersistErrc::BadValue);
  }
  // Garbage bytes: BadMagic, not a silent empty store.
  {
    std::vector<std::uint8_t> junk(32, static_cast<std::uint8_t>('n'));
    persist::write_file_atomic(path, junk);
    AdmissionController out;
    try {
      (void)load_snapshot(out, path);
      FAIL() << "garbage accepted";
    } catch (const persist::PersistError& e) {
      EXPECT_EQ(e.code(), persist::PersistErrc::BadMagic);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edfkit
