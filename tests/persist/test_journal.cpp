/// \file test_journal.cpp
/// Durable admission state, journal half: CRC-per-record framing, the
/// torn-tail-vs-corruption distinction, and every recovery composition
/// (snapshot + suffix, snapshot-only, journal-only cold, nothing).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "admission/replay.hpp"
#include "admission/snapshot.hpp"
#include "helpers.hpp"
#include "persist/format.hpp"
#include "persist/journal.hpp"

namespace edfkit {
namespace {

using testing::tk;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "edfkit_jrnl_" + name + "_" +
         std::to_string(::getpid());
}

std::vector<std::uint8_t> payload_of(char fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(fill));
}

void truncate_to(const std::string& path, std::uint64_t bytes) {
  std::filesystem::resize_file(path, bytes);
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(Journal, AppendScanRoundTrip) {
  const std::string path = temp_path("roundtrip");
  {
    persist::Journal j = persist::Journal::create(path);
    EXPECT_EQ(j.lsn(), 0u);
    EXPECT_EQ(j.append(payload_of('a', 5)), 0u);
    EXPECT_EQ(j.append(payload_of('b', 0)), 1u);  // empty records legal
    EXPECT_EQ(j.append(payload_of('c', 300)), 2u);
    EXPECT_EQ(j.lsn(), 3u);
  }
  const persist::JournalScan scan = persist::scan_journal(path);
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0], payload_of('a', 5));
  EXPECT_TRUE(scan.records[1].empty());
  EXPECT_EQ(scan.records[2], payload_of('c', 300));
  std::remove(path.c_str());
}

TEST(Journal, OpenAppendResumesLsns) {
  const std::string path = temp_path("resume");
  {
    persist::Journal j = persist::Journal::create(path);
    (void)j.append(payload_of('x', 8));
  }
  {
    persist::Journal j = persist::Journal::open_append(path);
    EXPECT_EQ(j.lsn(), 1u);
    EXPECT_EQ(j.append(payload_of('y', 8)), 1u);
  }
  EXPECT_EQ(persist::scan_journal(path).records.size(), 2u);
  std::remove(path.c_str());
}

TEST(Journal, TornFinalRecordIsDroppedNotFatal) {
  const std::string path = temp_path("torn");
  std::uint64_t two_records = 0;
  {
    persist::Journal j = persist::Journal::create(path);
    (void)j.append(payload_of('a', 40));
    (void)j.append(payload_of('b', 40));
    two_records = std::filesystem::file_size(path);
    (void)j.append(payload_of('c', 40));
  }
  const std::uint64_t full = std::filesystem::file_size(path);
  // Cut at every interesting place inside the final record's frame:
  // one byte into the len field, inside the crc, and mid-payload.
  for (const std::uint64_t keep :
       {two_records + 1, two_records + 6, full - 1}) {
    truncate_to(path, keep);
    const persist::JournalScan scan = persist::scan_journal(path);
    EXPECT_TRUE(scan.torn_tail) << "keep " << keep;
    ASSERT_EQ(scan.records.size(), 2u) << "keep " << keep;
    EXPECT_EQ(scan.valid_bytes, two_records) << "keep " << keep;
  }
  // open_append truncates the tail and continues cleanly.
  {
    truncate_to(path, two_records + 3);
    persist::Journal j = persist::Journal::open_append(path);
    EXPECT_EQ(j.lsn(), 2u);
    (void)j.append(payload_of('d', 12));
  }
  const persist::JournalScan healed = persist::scan_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.records[2], payload_of('d', 12));
  std::remove(path.c_str());
}

TEST(Journal, CrcCorruptionIsATypedError) {
  const std::string path = temp_path("crc");
  std::uint64_t first_payload_at = 0;
  {
    persist::Journal j = persist::Journal::create(path);
    first_payload_at = std::filesystem::file_size(path) + 8;
    (void)j.append(payload_of('a', 64));
    (void)j.append(payload_of('b', 64));
  }
  flip_byte(path, first_payload_at + 10);
  try {
    (void)persist::scan_journal(path);
    FAIL() << "corrupt record scanned silently";
  } catch (const persist::PersistError& e) {
    EXPECT_EQ(e.code(), persist::PersistErrc::BadCrc);
  }
  // recover() must propagate the corruption, not treat it as a tail.
  AdmissionController out;
  EXPECT_THROW((void)recover(out, "", path), persist::PersistError);
  std::remove(path.c_str());
}

TEST(Journal, WrongMagicIsATypedError) {
  const std::string path = temp_path("magic");
  {
    std::ofstream f(path, std::ios::binary);
    f << "definitely not a journal header";
  }
  try {
    (void)persist::scan_journal(path);
    FAIL() << "garbage scanned";
  } catch (const persist::PersistError& e) {
    EXPECT_EQ(e.code(), persist::PersistErrc::BadMagic);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- recovery compositions

AdmissionOptions fast_options() {
  AdmissionOptions opts;
  opts.skip_exact = true;
  return opts;
}

/// Churn a journaled controller; returns the ids still resident.
std::vector<TaskId> churn(AdmissionController& ctl, std::uint64_t seed,
                          int ops) {
  Rng rng(seed);
  std::vector<TaskId> live;
  std::vector<Task> pool;
  for (int op = 0; op < ops; ++op) {
    if (pool.empty()) {
      const TaskSet ts = draw_small_set(rng, 0.95);
      pool.assign(ts.begin(), ts.end());
    }
    if (!live.empty() && rng.bernoulli(0.4)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_time(0, static_cast<Time>(live.size()) - 1));
      (void)ctl.remove(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else if (rng.bernoulli(0.3)) {
      std::vector<Task> group;
      for (int i = 0; i < 3 && !pool.empty(); ++i) {
        group.push_back(pool.back());
        pool.pop_back();
      }
      const GroupDecision d = ctl.admit_group(group);
      for (const TaskId id : d.ids) live.push_back(id);
    } else {
      const AdmissionDecision d = ctl.try_admit(pool.back());
      pool.pop_back();
      if (d.admitted) live.push_back(d.id);
    }
  }
  return live;
}

void expect_same_store(const AdmissionController& a,
                       const AdmissionController& b) {
  const StoreHeader ha = a.demand_header();
  const StoreHeader hb = b.demand_header();
  EXPECT_EQ(ha.residents, hb.residents);
  EXPECT_EQ(ha.live_checkpoints, hb.live_checkpoints);
  EXPECT_EQ(ha.dead_checkpoints, hb.dead_checkpoints);
  EXPECT_EQ(ha.utilization, hb.utilization);
  EXPECT_EQ(ha.cert_ratio, hb.cert_ratio);
  EXPECT_EQ(a.stats().to_string(), b.stats().to_string());
  const TaskSet sa = a.snapshot();
  const TaskSet sb = b.snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(sa[i] == sb[i]) << i;
  }
}

TEST(Recovery, JournalOnlyColdRecovery) {
  const std::string wal = temp_path("cold.wal");
  std::remove(wal.c_str());
  AdmissionController original(fast_options());
  {
    persist::Journal j = persist::Journal::create(wal);
    original.attach_journal(&j);
    (void)churn(original, 31, 400);
    original.attach_journal(nullptr);
  }
  AdmissionController cold(fast_options());
  const RecoveryResult rec = recover(cold, "", wal);
  EXPECT_FALSE(rec.snapshot_loaded);
  EXPECT_EQ(rec.snapshot_lsn, 0u);
  EXPECT_EQ(rec.replayed, rec.journal_records);
  EXPECT_GT(rec.replayed, 0u);
  expect_same_store(original, cold);
  EXPECT_TRUE(cold.verify_consistency());
  std::remove(wal.c_str());
}

TEST(Recovery, SnapshotPlusSuffixAndSnapshotOnly) {
  const std::string wal = temp_path("mix.wal");
  const std::string snap = temp_path("mix.snap");
  std::remove(wal.c_str());
  std::remove(snap.c_str());
  AdmissionController original(fast_options());
  {
    persist::Journal j = persist::Journal::create(wal);
    original.attach_journal(&j);
    (void)churn(original, 77, 300);
    save_snapshot(original, snap, j.lsn());
    (void)churn(original, 78, 150);  // the suffix past the snapshot
    original.attach_journal(nullptr);
  }
  // Snapshot + suffix: bit-identical to the original.
  AdmissionController both(fast_options());
  const RecoveryResult rec = recover(both, snap, wal);
  EXPECT_TRUE(rec.snapshot_loaded);
  EXPECT_GT(rec.snapshot_lsn, 0u);
  EXPECT_EQ(rec.replayed, rec.journal_records - rec.snapshot_lsn);
  EXPECT_GT(rec.replayed, 0u);
  expect_same_store(original, both);

  // Snapshot-only: a valid (older) state — the journal suffix is lost.
  AdmissionController snap_only(fast_options());
  const RecoveryResult rec2 = recover(snap_only, snap, "");
  EXPECT_TRUE(rec2.snapshot_loaded);
  EXPECT_EQ(rec2.replayed, 0u);
  EXPECT_TRUE(snap_only.verify_consistency());

  // Snapshot + *empty* journal (header only): snapshot ahead of the
  // journal must be refused, not half-replayed.
  const std::string empty_wal = temp_path("mix_empty.wal");
  { persist::Journal j = persist::Journal::create(empty_wal); }
  AdmissionController ahead(fast_options());
  try {
    (void)recover(ahead, snap, empty_wal);
    FAIL() << "snapshot ahead of journal accepted";
  } catch (const persist::PersistError& e) {
    EXPECT_EQ(e.code(), persist::PersistErrc::BadValue);
  }
  std::remove(empty_wal.c_str());
  std::remove(wal.c_str());
  std::remove(snap.c_str());
}

TEST(Recovery, EmptyJournalAndNoArtifactsAreCleanColdStarts) {
  const std::string wal = temp_path("empty.wal");
  { persist::Journal j = persist::Journal::create(wal); }
  AdmissionController a(fast_options());
  const RecoveryResult rec = recover(a, "", wal);
  EXPECT_EQ(rec.journal_records, 0u);
  EXPECT_EQ(rec.replayed, 0u);
  EXPECT_FALSE(rec.torn_tail);
  EXPECT_EQ(a.size(), 0u);
  // Missing files entirely: also a clean cold start.
  AdmissionController b(fast_options());
  const RecoveryResult rec2 =
      recover(b, temp_path("nonexistent.snap"), temp_path("nonexistent.wal"));
  EXPECT_FALSE(rec2.snapshot_loaded);
  EXPECT_EQ(rec2.journal_records, 0u);
  std::remove(wal.c_str());
}

// ------------------------------------------------- rotation (journal GC)

TEST(Journal, RotateDropsPrefixAndKeepsLsnsStable) {
  const std::string path = temp_path("rotate");
  std::remove(path.c_str());
  persist::Journal j = persist::Journal::create(path);
  for (char c = 'a'; c < 'a' + 8; ++c) (void)j.append(payload_of(c, 16));
  EXPECT_EQ(j.lsn(), 8u);
  EXPECT_EQ(j.base_lsn(), 0u);
  const auto before = std::filesystem::file_size(path);

  EXPECT_EQ(j.rotate(5), 5u);
  EXPECT_EQ(j.base_lsn(), 5u);
  EXPECT_EQ(j.lsn(), 8u);  // LSNs unaffected by GC
  EXPECT_LT(std::filesystem::file_size(path), before);

  // Appends continue with stable LSNs into the rotated file.
  EXPECT_EQ(j.append(payload_of('z', 16)), 8u);

  const persist::JournalScan scan = persist::scan_journal(path);
  EXPECT_EQ(scan.base_lsn, 5u);
  ASSERT_EQ(scan.records.size(), 4u);  // LSNs 5,6,7 survive + 8 appended
  EXPECT_EQ(scan.records[0], payload_of('f', 16));
  EXPECT_EQ(scan.records[3], payload_of('z', 16));

  // Rotating at or below the current base is a no-op; beyond lsn()
  // clamps to the end (drops everything currently on disk).
  EXPECT_EQ(j.rotate(3), 0u);
  EXPECT_EQ(j.rotate(100), 4u);
  EXPECT_EQ(j.base_lsn(), 9u);
  EXPECT_EQ(persist::scan_journal(path).records.size(), 0u);
  std::remove(path.c_str());
}

TEST(Journal, OpenAppendResumesARotatedJournal) {
  const std::string path = temp_path("rotate_resume");
  std::remove(path.c_str());
  {
    persist::Journal j = persist::Journal::create(path);
    for (int i = 0; i < 6; ++i) (void)j.append(payload_of('p', 8));
    (void)j.rotate(4);
  }
  persist::Journal j = persist::Journal::open_append(path);
  EXPECT_EQ(j.base_lsn(), 4u);
  EXPECT_EQ(j.lsn(), 6u);
  EXPECT_EQ(j.append(payload_of('q', 8)), 6u);
  // A torn tail after rotation still truncates cleanly on reopen.
  truncate_to(path, std::filesystem::file_size(path) - 3);
  persist::Journal again = persist::Journal::open_append(path);
  EXPECT_EQ(again.lsn(), 6u);
  std::remove(path.c_str());
}

TEST(Recovery, RecoverAfterRotateMatchesUnrotatedTwin) {
  const std::string wal = temp_path("rotgc.wal");
  const std::string wal_twin = temp_path("rotgc_twin.wal");
  const std::string snap = temp_path("rotgc.snap");
  for (const auto& p : {wal, wal_twin, snap}) std::remove(p.c_str());

  // Two identical journaled runs; one journal is rotated at the
  // snapshot LSN (the compaction pattern: snapshot, then GC the records
  // the snapshot folded in), the twin keeps its full history.
  AdmissionController original(fast_options());
  AdmissionController twin_src(fast_options());
  {
    persist::Journal j = persist::Journal::create(wal);
    persist::Journal jt = persist::Journal::create(wal_twin);
    original.attach_journal(&j);
    twin_src.attach_journal(&jt);
    (void)churn(original, 91, 300);
    (void)churn(twin_src, 91, 300);
    save_snapshot(original, snap, j.lsn());
    EXPECT_EQ(j.rotate(j.lsn()), j.lsn());  // GC everything snapshotted
    (void)churn(original, 92, 150);  // suffix lands in the rotated file
    (void)churn(twin_src, 92, 150);
    original.attach_journal(nullptr);
    twin_src.attach_journal(nullptr);
  }
  expect_same_store(original, twin_src);

  AdmissionController recovered(fast_options());
  const RecoveryResult rec = recover(recovered, snap, wal);
  EXPECT_TRUE(rec.snapshot_loaded);
  EXPECT_GT(rec.snapshot_lsn, 0u);
  EXPECT_EQ(rec.replayed, rec.journal_records);  // whole rotated file
  expect_same_store(original, recovered);
  EXPECT_TRUE(recovered.verify_consistency());

  // The rotated journal without its snapshot is refused: the records a
  // cold replay would need are gone, and that must never be silent.
  AdmissionController cold(fast_options());
  try {
    (void)recover(cold, "", wal);
    FAIL() << "cold recovery from a rotated journal accepted";
  } catch (const persist::PersistError& e) {
    EXPECT_EQ(e.code(), persist::PersistErrc::BadValue);
  }

  for (const auto& p : {wal, wal_twin, snap}) std::remove(p.c_str());
}

TEST(Recovery, TornJournalTailRecoversThePrefix) {
  const std::string wal = temp_path("torntail.wal");
  std::remove(wal.c_str());
  AdmissionController original(fast_options());
  {
    persist::Journal j = persist::Journal::create(wal);
    original.attach_journal(&j);
    (void)original.try_admit(tk(1, 4, 8));
    (void)original.try_admit(tk(2, 12, 16));
    original.attach_journal(nullptr);
  }
  // Tear the last record mid-payload: recovery keeps the first admit.
  truncate_to(wal, std::filesystem::file_size(wal) - 3);
  AdmissionController rec_ctl(fast_options());
  const RecoveryResult rec = recover(rec_ctl, "", wal);
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_EQ(rec.journal_records, 1u);
  EXPECT_EQ(rec.replayed, 1u);
  EXPECT_EQ(rec_ctl.size(), 1u);
  EXPECT_TRUE(rec_ctl.verify_consistency());
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace edfkit
