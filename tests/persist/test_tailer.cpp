/// \file test_tailer.cpp
/// JournalTailer unit tests: live follow (records interleaved with
/// appends), catch-up semantics, resuming from an arbitrary LSN,
/// rotation with a surviving suffix (transparent), rotation past the
/// reader (RotatedPast + seek), missing files, torn tails, and CRC
/// corruption (throws, never skips).
#include "persist/tailer.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "persist/journal.hpp"

namespace edfkit::persist {
namespace {

std::string temp_path() {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("edfkit_tailer_test_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return (dir / "t.wal").string();
}

std::vector<std::uint8_t> rec(std::uint8_t tag, std::size_t len = 16) {
  std::vector<std::uint8_t> payload(len, tag);
  payload[0] = tag;
  return payload;
}

TEST(Tailer, FollowsLiveAppends) {
  const std::string path = temp_path();
  Journal j = Journal::create(path);
  JournalTailer tail(path);
  TailedRecord out;

  // Nothing yet: caught up, not an error.
  EXPECT_EQ(tail.poll(out), TailStatus::CaughtUp);

  (void)j.append(rec(1));
  (void)j.append(rec(2));
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 0u);
  EXPECT_EQ(out.payload, rec(1));
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 1u);
  EXPECT_EQ(out.payload, rec(2));
  EXPECT_EQ(tail.poll(out), TailStatus::CaughtUp);
  EXPECT_EQ(tail.next_lsn(), 2u);

  // The writer keeps going; the tailer picks it up on the next poll.
  (void)j.append(rec(3));
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 2u);
  EXPECT_EQ(out.payload, rec(3));
}

TEST(Tailer, MissingFileIsCaughtUpUntilCreated) {
  const std::string path = temp_path();
  JournalTailer tail(path);
  TailedRecord out;
  EXPECT_EQ(tail.poll(out), TailStatus::CaughtUp);

  Journal j = Journal::create(path);
  (void)j.append(rec(7));
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 0u);
}

TEST(Tailer, ResumesFromRequestedLsn) {
  const std::string path = temp_path();
  Journal j = Journal::create(path);
  for (std::uint8_t i = 0; i < 10; ++i) (void)j.append(rec(i));

  JournalTailer tail(path, /*from_lsn=*/7);
  TailedRecord out;
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 7u);
  EXPECT_EQ(out.payload, rec(7));
}

TEST(Tailer, RotationWithSurvivingSuffixIsTransparent) {
  const std::string path = temp_path();
  Journal j = Journal::create(path);
  for (std::uint8_t i = 0; i < 8; ++i) (void)j.append(rec(i));

  JournalTailer tail(path);
  TailedRecord out;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(tail.poll(out), TailStatus::Record);
    EXPECT_EQ(out.lsn, i);
  }

  // GC the prefix the tailer already consumed: new inode, base_lsn 4.
  EXPECT_EQ(j.rotate(4), 4u);
  (void)j.append(rec(8));

  // LSNs are stable across rotation; delivery continues at 4.
  for (std::uint64_t i = 4; i < 9; ++i) {
    ASSERT_EQ(tail.poll(out), TailStatus::Record) << "lsn " << i;
    EXPECT_EQ(out.lsn, i);
    EXPECT_EQ(out.payload, rec(static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(tail.poll(out), TailStatus::CaughtUp);
}

TEST(Tailer, RotatedPastRequiresSeek) {
  const std::string path = temp_path();
  Journal j = Journal::create(path);
  for (std::uint8_t i = 0; i < 8; ++i) (void)j.append(rec(i));

  JournalTailer tail(path);
  TailedRecord out;
  ASSERT_EQ(tail.poll(out), TailStatus::Record);  // consumed lsn 0

  // GC beyond the tailer's position: records [1, 6) are gone.
  EXPECT_EQ(j.rotate(6), 6u);
  EXPECT_EQ(tail.poll(out), TailStatus::RotatedPast);
  // Still RotatedPast until the caller re-seeds (poll is idempotent).
  EXPECT_EQ(tail.poll(out), TailStatus::RotatedPast);

  // A re-seed (snapshot at LSN 6) repositions; delivery resumes there.
  tail.seek(6);
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 6u);
  EXPECT_EQ(out.payload, rec(6));
}

TEST(Tailer, TornTailIsCaughtUpThenCompletes) {
  const std::string path = temp_path();
  Journal j = Journal::create(path);
  (void)j.append(rec(1));
  j.sync();

  // Append torn bytes by hand: a frame length prefix with no payload.
  const std::uint64_t intact_size = std::filesystem::file_size(path);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const std::uint32_t len = 64;
    f.write(reinterpret_cast<const char*>(&len), sizeof len);
  }

  JournalTailer tail(path);
  TailedRecord out;
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 0u);
  // The torn frame is a transient: CaughtUp, never an error.
  EXPECT_EQ(tail.poll(out), TailStatus::CaughtUp);

  // The writer's crash recovery truncates the torn bytes back and the
  // next append lands where the torn one began; the tailer follows.
  std::filesystem::resize_file(path, intact_size);
  Journal reopened = Journal::open_append(path);
  (void)reopened.append(rec(2));
  ASSERT_EQ(tail.poll(out), TailStatus::Record);
  EXPECT_EQ(out.lsn, 1u);
  EXPECT_EQ(out.payload, rec(2));
}

TEST(Tailer, CrcCorruptionThrows) {
  const std::string path = temp_path();
  Journal j = Journal::create(path);
  (void)j.append(rec(1, 64));
  (void)j.append(rec(2, 64));
  j.sync();

  // Flip one payload byte of the second record on disk.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-8, std::ios::end);
    char b;
    f.seekg(-8, std::ios::end);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(-8, std::ios::end);
    f.write(&b, 1);
  }

  JournalTailer tail(path);
  TailedRecord out;
  ASSERT_EQ(tail.poll(out), TailStatus::Record);  // record 0 intact
  EXPECT_THROW((void)tail.poll(out), PersistError);
}

}  // namespace
}  // namespace edfkit::persist
