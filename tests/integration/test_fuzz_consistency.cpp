/// \file test_fuzz_consistency.cpp
/// Adversarial randomized consistency: workload families deliberately
/// outside the paper's evaluation envelope — arbitrary deadlines
/// (D > T), one-shot tasks, extreme period contrast, unit-scale values,
/// utilization straddling 1 — where all exact deciders must still agree
/// and every sufficient verdict must still be sound.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "core/superpos.hpp"
#include "demand/dbf.hpp"
#include "sim/oracle.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

/// Arbitrary-deadline generator: D anywhere in [C, 3T].
TaskSet draw_arbitrary_deadline_set(Rng& rng) {
  const int n = rng.uniform_int(1, 8);
  TaskSet ts;
  for (int i = 0; i < n; ++i) {
    Task t;
    t.period = rng.uniform_time(3, 40);
    t.wcet = rng.uniform_time(1, std::max<Time>(1, t.period / 2));
    t.deadline = rng.uniform_time(t.wcet, 3 * t.period);
    ts.add(std::move(t));
  }
  return ts;
}

/// Mixed extremes: unit-size tasks, one-shots, and period contrast.
TaskSet draw_extreme_set(Rng& rng) {
  TaskSet ts;
  const int n = rng.uniform_int(2, 6);
  for (int i = 0; i < n; ++i) {
    Task t;
    switch (rng.uniform_int(0, 3)) {
      case 0:  // unit task
        t = make_task(1, 1, rng.uniform_time(1, 4));
        break;
      case 1:  // one-shot
        t = make_task(rng.uniform_time(1, 5), rng.uniform_time(2, 30),
                      kTimeInfinity);
        break;
      case 2:  // slow heavy task
        t = make_task(rng.uniform_time(5, 30), rng.uniform_time(30, 120),
                      rng.uniform_time(60, 240));
        break;
      default:  // fast light task
        t = make_task(1, rng.uniform_time(1, 6), rng.uniform_time(2, 8));
        break;
    }
    ts.add(std::move(t));
  }
  return ts;
}

void check_consistency(const TaskSet& ts) {
  const FeasibilityResult pd = processor_demand_test(ts);
  const FeasibilityResult qpa = qpa_test(ts);
  const FeasibilityResult dyn = dynamic_error_test(ts);
  const FeasibilityResult aa = all_approx_test(ts);
  EXPECT_EQ(pd.verdict, qpa.verdict) << ts.to_string();
  EXPECT_EQ(pd.verdict, dyn.verdict) << ts.to_string();
  EXPECT_EQ(pd.verdict, aa.verdict) << ts.to_string();
  // Witness validity whenever one is reported.
  for (const FeasibilityResult* r : {&pd, &dyn, &aa}) {
    if (r->infeasible() && r->witness >= 0) {
      EXPECT_GT(dbf(ts, r->witness), r->witness) << ts.to_string();
    }
  }
  // Sufficient tests: acceptance soundness only.
  if (devi_test(ts).feasible()) {
    EXPECT_EQ(pd.verdict, Verdict::Feasible) << ts.to_string();
  }
  if (superpos_test(ts, 3).feasible()) {
    EXPECT_EQ(pd.verdict, Verdict::Feasible) << ts.to_string();
  }
  // Execution oracle when tractable.
  const FeasibilityResult oracle = simulate_feasibility(ts);
  if (oracle.verdict != Verdict::Unknown) {
    EXPECT_EQ(pd.verdict, oracle.verdict) << ts.to_string();
  }
}

class FuzzArbitraryDeadlines
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzArbitraryDeadlines, AllDecidersAgree) {
  Rng rng(GetParam() * 1013 + 7);
  for (int i = 0; i < 40; ++i) {
    check_consistency(draw_arbitrary_deadline_set(rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzArbitraryDeadlines,
                         ::testing::Range<std::uint64_t>(0, 15));

class FuzzExtremes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzExtremes, AllDecidersAgree) {
  Rng rng(GetParam() * 2027 + 3);
  for (int i = 0; i < 40; ++i) {
    check_consistency(draw_extreme_set(rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzExtremes,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(FuzzDegenerate, SingleTaskExhaustive) {
  // Exhaustive sweep over small single-task parameter space: feasible
  // iff C <= D (a single sporadic task only needs its first job to fit;
  // later jobs have at least T > 0 fresh budget... exactness check vs
  // the deciders).
  for (Time c = 1; c <= 6; ++c) {
    for (Time d = 1; d <= 8; ++d) {
      for (Time t = 1; t <= 8; ++t) {
        TaskSet ts;
        Task task;
        task.wcet = c;
        task.deadline = d;
        task.period = t;
        if (!task.valid()) continue;
        ts.add(task);
        const bool pd = processor_demand_test(ts).feasible();
        check_consistency(ts);
        // Ground truth for one task: every window of k jobs must fit:
        // k*C <= D + (k-1)*T for all k >= 1.
        bool truth = c <= d;
        if (c > t) {
          // Long-run rate exceeds capacity: some k eventually fails.
          truth = false;
        }
        EXPECT_EQ(pd, truth) << ts.to_string();
      }
    }
  }
}

TEST(FuzzDegenerate, PairwiseTinyExhaustive) {
  // All pairs of tiny tasks with parameters in [1,4]: the oracle is
  // always tractable here, giving a fully independent ground truth.
  int combos = 0;
  for (Time c1 = 1; c1 <= 2; ++c1)
    for (Time d1 = 1; d1 <= 4; ++d1)
      for (Time t1 = 1; t1 <= 4; ++t1)
        for (Time c2 = 1; c2 <= 2; ++c2)
          for (Time d2 = 1; d2 <= 4; ++d2)
            for (Time t2 = 2; t2 <= 4; t2 += 2) {
              Task a;
              a.wcet = c1;
              a.deadline = d1;
              a.period = t1;
              Task b;
              b.wcet = c2;
              b.deadline = d2;
              b.period = t2;
              if (!a.valid() || !b.valid()) continue;
              TaskSet ts({a, b});
              const FeasibilityResult oracle = simulate_feasibility(ts);
              ASSERT_NE(oracle.verdict, Verdict::Unknown);
              EXPECT_EQ(processor_demand_test(ts).verdict, oracle.verdict)
                  << ts.to_string();
              EXPECT_EQ(all_approx_test(ts).verdict, oracle.verdict)
                  << ts.to_string();
              EXPECT_EQ(dynamic_error_test(ts).verdict, oracle.verdict)
                  << ts.to_string();
              ++combos;
            }
  EXPECT_GT(combos, 300);
}

}  // namespace
}  // namespace edfkit
