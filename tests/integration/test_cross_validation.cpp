/// \file test_cross_validation.cpp
/// The repository's central property suite: every implemented test is
/// cross-validated against every other on shared random workloads.
///
///   * Exact tests (processor demand, QPA, dynamic-error, all-approx)
///     and the simulation oracle must agree bit-for-bit on verdicts.
///   * Sufficient tests (Liu&Layland on constrained sets, Devi,
///     SuperPos(x), Chakraborty, RTC) may give up but must never accept
///     an infeasible set nor claim infeasibility of a feasible one.
///   * The acceptance hierarchy of §3 holds:
///       RTC <= Devi == SuperPos(1) <= SuperPos(2) <= ... <= exact.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/chakraborty.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "analysis/utilization.hpp"
#include "core/all_approx.hpp"
#include "core/analyzer.hpp"
#include "core/dynamic_test.hpp"
#include "core/superpos.hpp"
#include "rtc/rtc_feas.hpp"
#include "sim/oracle.hpp"

namespace edfkit {
namespace {

struct Workload {
  const char* name;
  bool simulable;
  double u_lo;
  double u_hi;
};

class CrossValidation
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static constexpr Workload kWorkloads[] = {
      {"small-mid", true, 0.50, 0.90},
      {"small-high", true, 0.90, 1.05},
      {"paper-mid", false, 0.80, 0.93},
      {"paper-high", false, 0.93, 0.995},
  };

  TaskSet draw(Rng& rng) const {
    const Workload& w = kWorkloads[std::get<0>(GetParam())];
    const double u = rng.uniform(w.u_lo, w.u_hi);
    return w.simulable ? draw_small_set(rng, u) : draw_fig8_set(rng, u);
  }
  bool simulable() const {
    return kWorkloads[std::get<0>(GetParam())].simulable;
  }
  Rng make_rng() const {
    return Rng(std::get<1>(GetParam()) * 7919 +
               static_cast<std::uint64_t>(std::get<0>(GetParam())));
  }
};

TEST_P(CrossValidation, ExactTestsAgree) {
  Rng rng = make_rng();
  for (int i = 0; i < 15; ++i) {
    const TaskSet ts = draw(rng);
    const Verdict pd = processor_demand_test(ts).verdict;
    EXPECT_EQ(pd, qpa_test(ts).verdict) << ts.to_string();
    EXPECT_EQ(pd, dynamic_error_test(ts).verdict) << ts.to_string();
    EXPECT_EQ(pd, all_approx_test(ts).verdict) << ts.to_string();
    if (simulable()) {
      const Verdict oracle = simulate_feasibility(ts).verdict;
      if (oracle != Verdict::Unknown) {
        EXPECT_EQ(pd, oracle) << ts.to_string();
      }
    }
  }
}

TEST_P(CrossValidation, SufficientTestsNeverLie) {
  Rng rng = make_rng();
  for (int i = 0; i < 15; ++i) {
    const TaskSet ts = draw(rng);
    const Verdict truth = processor_demand_test(ts).verdict;
    for (const TestKind k :
         {TestKind::LiuLayland, TestKind::Devi, TestKind::SuperPos,
          TestKind::Chakraborty}) {
      const Verdict v = run_test(ts, k).verdict;
      if (v == Verdict::Feasible) {
        EXPECT_EQ(truth, Verdict::Feasible)
            << to_string(k) << " accepted an infeasible set\n"
            << ts.to_string();
      }
      if (v == Verdict::Infeasible) {
        EXPECT_EQ(truth, Verdict::Infeasible)
            << to_string(k) << " rejected a feasible set as infeasible\n"
            << ts.to_string();
      }
    }
    const Verdict rtc = rtc::rtc_feasibility_test(ts).verdict;
    if (rtc == Verdict::Feasible) {
      EXPECT_EQ(truth, Verdict::Feasible) << ts.to_string();
    }
  }
}

TEST_P(CrossValidation, AcceptanceHierarchyHolds) {
  Rng rng = make_rng();
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = draw(rng);
    const bool rtc = rtc::rtc_feasibility_test(ts).feasible();
    const bool devi = devi_test(ts).feasible();
    const bool sp1 = superpos_test(ts, 1).feasible();
    const bool sp3 = superpos_test(ts, 3).feasible();
    const bool exact = processor_demand_test(ts).feasible();
    EXPECT_EQ(devi, sp1) << "Lemma 2 violated\n" << ts.to_string();
    if (rtc) {
      EXPECT_TRUE(devi) << ts.to_string();
    }
    if (sp1) {
      EXPECT_TRUE(sp3) << ts.to_string();
    }
    if (sp3) {
      EXPECT_TRUE(exact) << ts.to_string();
    }
  }
}

TEST_P(CrossValidation, EffortNeverExceedsProcessorDemandGrossly) {
  // The new tests' whole point: on no workload family may their mean
  // effort exceed the processor-demand test's by more than a small
  // constant (they are usually far below it).
  Rng rng = make_rng();
  std::uint64_t pd = 0;
  std::uint64_t dyn = 0;
  std::uint64_t aa = 0;
  for (int i = 0; i < 15; ++i) {
    const TaskSet ts = draw(rng);
    pd += processor_demand_test(ts).iterations;
    dyn += dynamic_error_test(ts).effort();
    aa += all_approx_test(ts).effort();
  }
  EXPECT_LE(dyn, 3 * pd + 500) << "dynamic test effort out of line";
  EXPECT_LE(aa, 3 * pd + 500) << "all-approx effort out of line";
}

std::string workload_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  static const char* const names[] = {"SmallMid", "SmallHigh", "PaperMid",
                                      "PaperHigh"};
  return std::string(names[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrossValidation,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)),
    workload_name);

TEST(CrossValidationEdge, JitterTightensVerdictMonotonically) {
  // Adding release jitter can only make a set harder: a set infeasible
  // without jitter stays infeasible with it.
  Rng rng(77);
  for (int i = 0; i < 25; ++i) {
    const TaskSet base = draw_small_set(rng, rng.uniform(0.7, 1.0));
    TaskSet jittered;
    for (Task t : base) {
      t.jitter = std::min<Time>(t.deadline - 1, 1);
      jittered.add(std::move(t));
    }
    const bool base_ok = processor_demand_test(base).feasible();
    const bool jit_ok = processor_demand_test(jittered).feasible();
    if (jit_ok) {
      EXPECT_TRUE(base_ok) << base.to_string();
    }
    // And the new tests agree on the jittered variant too.
    EXPECT_EQ(processor_demand_test(jittered).verdict,
              all_approx_test(jittered).verdict);
    EXPECT_EQ(processor_demand_test(jittered).verdict,
              dynamic_error_test(jittered).verdict);
  }
}

TEST(CrossValidationEdge, ScalingInvariance) {
  // Multiplying all task parameters by a constant must not change any
  // verdict (pure integer-time scaling).
  Rng rng(101);
  for (int i = 0; i < 20; ++i) {
    const TaskSet base = draw_small_set(rng, rng.uniform(0.6, 1.0));
    const TaskSet scaled = base.scaled(1000);
    EXPECT_EQ(processor_demand_test(base).verdict,
              processor_demand_test(scaled).verdict);
    EXPECT_EQ(all_approx_test(base).verdict,
              all_approx_test(scaled).verdict);
    EXPECT_EQ(dynamic_error_test(base).verdict,
              dynamic_error_test(scaled).verdict);
    EXPECT_EQ(devi_test(base).verdict, devi_test(scaled).verdict);
  }
}

}  // namespace
}  // namespace edfkit
