/// \file test_regression.cpp
/// Golden-value pins: exact iteration counts and verdicts for fixed
/// inputs. These lock down the instrumented behaviour that EXPERIMENTS.md
/// reports; any algorithmic change that shifts them must be deliberate.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/bounds.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "lit/literature.hpp"
#include "model/io.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Regression, QuickstartDemoSet) {
  const TaskSet ts = parse_task_set(R"(
    task video    2   8   20
    task audio    3  25   30
    task control  4  40   50
    task sensor   6  60   70
    task fusion   9  90  100
    task plan    14 140  150
    task log     20 190  200
    task net     30 290  300
    task disk    46 390  400
    task ui      72 580  600
  )");
  EXPECT_EQ(ts.utilization().to_string(), "4133/4200");
  EXPECT_EQ(devi_test(ts).verdict, Verdict::Unknown);

  const FeasibilityResult dyn = dynamic_error_test(ts);
  EXPECT_EQ(dyn.verdict, Verdict::Feasible);
  EXPECT_EQ(dyn.iterations, 11u);
  EXPECT_EQ(dyn.revisions, 2u);

  const FeasibilityResult aa = all_approx_test(ts);
  EXPECT_EQ(aa.verdict, Verdict::Feasible);
  EXPECT_EQ(aa.iterations, 14u);
  EXPECT_EQ(aa.revisions, 5u);

  const FeasibilityResult pd = processor_demand_test(ts);
  EXPECT_EQ(pd.verdict, Verdict::Feasible);
  EXPECT_EQ(pd.iterations, 78u);
}

TEST(Regression, LiteratureTable1) {
  // Our measured Table 1 (EXPERIMENTS.md): iteration counts per set.
  struct Row {
    const char* name;
    bool devi_ok;
    std::uint64_t dyn_effort;
    std::uint64_t aa_effort;
    std::uint64_t pd_iters;
  };
  const Row expect[] = {
      {"Burns", true, 14, 14, 843},
      {"Ma&Shin", false, 13, 19, 78},
      {"GAP", true, 18, 18, 183},
      {"Gresser1", false, 15, 14, 131},
      {"Gresser2", false, 32, 26, 101},
  };
  const auto sets = lit::all_literature_sets();
  ASSERT_EQ(sets.size(), 5u);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const Row& row = expect[i];
    const auto& s = sets[i];
    EXPECT_EQ(s.name, row.name);
    EXPECT_EQ(devi_test(s.tasks).feasible(), row.devi_ok) << s.name;
    EXPECT_EQ(dynamic_error_test(s.tasks).effort(), row.dyn_effort) << s.name;
    EXPECT_EQ(all_approx_test(s.tasks).effort(), row.aa_effort) << s.name;
    EXPECT_EQ(processor_demand_test(s.tasks).iterations, row.pd_iters)
        << s.name;
  }
}

TEST(Regression, BoundsOnBurns) {
  const TaskSet burns = lit::burns_set().tasks;
  const auto george = george_bound(burns);
  const auto sup = superposition_bound(burns);
  ASSERT_TRUE(george.has_value());
  ASSERT_TRUE(sup.has_value());
  // Superposition bound = max(Dmax, George) for constrained deadlines.
  EXPECT_EQ(*sup, std::max(burns.max_deadline(), *george));
  EXPECT_EQ(implicit_test_bound(burns), *sup);
}

TEST(Regression, WitnessPin) {
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  EXPECT_EQ(processor_demand_test(bad).witness, 22);
  EXPECT_EQ(all_approx_test(bad).witness, 22);
  EXPECT_EQ(dynamic_error_test(bad).witness, 22);
}

TEST(Regression, GeneratorStability) {
  // The seeded generator underpins every figure; pin one draw.
  Rng rng(42);
  const TaskSet ts = draw_fig8_set(rng, 0.95);
  EXPECT_EQ(ts.size(), 77u);
  EXPECT_NEAR(ts.utilization_double(), 0.95, 0.002);
  Rng rng2(42);
  EXPECT_EQ(draw_fig8_set(rng2, 0.95), ts);
}

}  // namespace
}  // namespace edfkit
