/// \file test_degradation.cpp
/// Exactness-degradation paths under stress: hundreds of near-coprime
/// billion-scale periods overflow the int128 rationals, forcing every
/// analysis through its certified fixed-point fallbacks. Verdicts must
/// remain sound and mutually consistent, and runs must terminate in
/// reasonable effort.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/bounds.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "core/superpos.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

/// n tasks with periods ~1e9 (near-coprime), utilization ~target, gap g.
TaskSet giant_period_set(Rng& rng, int n, double target, double gap) {
  TaskSet ts;
  for (int i = 0; i < n; ++i) {
    Task t;
    t.period = rng.uniform_time(1'000'000'000, 2'000'000'000);
    const double u = target / n;
    t.wcet = std::max<Time>(
        1, static_cast<Time>(u * static_cast<double>(t.period)));
    t.deadline = std::max<Time>(
        t.wcet,
        static_cast<Time>((1.0 - gap) * static_cast<double>(t.period)));
    ts.add(std::move(t));
  }
  return ts;
}

TEST(Degradation, RationalsOverflowButVerdictsAgree) {
  Rng rng(71);
  for (int trial = 0; trial < 6; ++trial) {
    const TaskSet ts =
        giant_period_set(rng, 250, rng.uniform(0.5, 0.9), 0.2);
    ASSERT_FALSE(ts.utilization().exact())
        << "workload failed to overflow the rationals";
    const Verdict pd = processor_demand_test(ts).verdict;
    EXPECT_EQ(pd, qpa_test(ts).verdict);
    EXPECT_EQ(pd, dynamic_error_test(ts).verdict);
    EXPECT_EQ(pd, all_approx_test(ts).verdict);
    EXPECT_NE(pd, Verdict::Unknown);
  }
}

TEST(Degradation, HighUtilizationStillDecided) {
  Rng rng(73);
  const TaskSet ts = giant_period_set(rng, 300, 0.95, 0.25);
  ASSERT_FALSE(ts.utilization().exact());
  const FeasibilityResult pd = processor_demand_test(ts);
  const FeasibilityResult aa = all_approx_test(ts);
  const FeasibilityResult dyn = dynamic_error_test(ts);
  EXPECT_EQ(pd.verdict, aa.verdict);
  EXPECT_EQ(pd.verdict, dyn.verdict);
  // The certified fallback keeps effort sane (no revision storms from
  // spurious Unknown comparisons).
  EXPECT_LT(aa.effort(), 100 * ts.size());
  EXPECT_LT(dyn.effort(), 100 * ts.size());
}

TEST(Degradation, DeviStaysUsable) {
  // Low utilization + mild gaps: Devi should *accept* despite the
  // rational overflow (the certified fixed-point path decides).
  Rng rng(79);
  const TaskSet ts = giant_period_set(rng, 300, 0.5, 0.1);
  ASSERT_FALSE(ts.utilization().exact());
  const FeasibilityResult r = devi_test(ts);
  EXPECT_EQ(r.verdict, Verdict::Feasible);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(superpos_test(ts, 1).verdict, Verdict::Feasible);
}

TEST(Degradation, BoundsRemainFiniteAndOrdered) {
  Rng rng(83);
  const TaskSet ts = giant_period_set(rng, 300, 0.8, 0.3);
  ASSERT_FALSE(ts.utilization().exact());
  const auto g = george_bound(ts);
  const auto s = superposition_bound(ts);
  const auto b = baruah_bound(ts);
  ASSERT_TRUE(g.has_value());
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(is_time_infinite(*g));
  EXPECT_GE(*s, ts.max_deadline());
  // Baruah's certified fallback over-approximates George's.
  EXPECT_GE(*b, *g / 2);
  EXPECT_FALSE(is_time_infinite(default_test_bound(ts)));
}

TEST(Degradation, WitnessesStayExactUnderOverflow) {
  // Force infeasibility in an overflow regime: one tight task on top of
  // the coprime background.
  Rng rng(89);
  TaskSet ts = giant_period_set(rng, 200, 0.7, 0.2);
  Task tight;
  tight.wcet = 900'000'000;
  tight.deadline = 1'000'000'000;
  tight.period = 1'999'999'999;
  ts.add(tight);  // ~0.45 extra utilization: overload around I ~ 1e9
  const FeasibilityResult aa = all_approx_test(ts);
  const FeasibilityResult pd = processor_demand_test(ts);
  EXPECT_EQ(aa.verdict, pd.verdict);
  if (aa.infeasible() && aa.witness >= 0) {
    EXPECT_GT(dbf(ts, aa.witness), aa.witness);
  }
}

}  // namespace
}  // namespace edfkit
