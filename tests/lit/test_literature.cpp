#include "lit/literature.hpp"

#include <gtest/gtest.h>

#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"

namespace edfkit::lit {
namespace {

class LiteratureSuite : public ::testing::TestWithParam<int> {
 protected:
  LiteratureSet set() const {
    return all_literature_sets()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(LiteratureSuite, SizeInPaperRange) {
  // §5: "The amount of tasks are small (7 to 21 tasks)".
  const LiteratureSet s = set();
  EXPECT_GE(s.tasks.size(), 7u) << s.name;
  EXPECT_LE(s.tasks.size(), 21u) << s.name;
}

TEST_P(LiteratureSuite, DeviColumnMatchesTable1) {
  const LiteratureSet s = set();
  const FeasibilityResult devi = devi_test(s.tasks);
  if (s.devi_accepts) {
    EXPECT_EQ(devi.verdict, Verdict::Feasible) << s.name;
    // Accepted sets cost exactly one iteration per task (the paper's
    // Devi column equals n).
    EXPECT_EQ(devi.iterations, s.tasks.size()) << s.name;
  } else {
    EXPECT_EQ(devi.verdict, Verdict::Unknown) << s.name;
  }
}

TEST_P(LiteratureSuite, ExactTestsAgreeWithGroundTruth) {
  const LiteratureSet s = set();
  const Verdict expect = s.feasible ? Verdict::Feasible : Verdict::Infeasible;
  EXPECT_EQ(processor_demand_test(s.tasks).verdict, expect) << s.name;
  EXPECT_EQ(qpa_test(s.tasks).verdict, expect) << s.name;
  EXPECT_EQ(dynamic_error_test(s.tasks).verdict, expect) << s.name;
  EXPECT_EQ(all_approx_test(s.tasks).verdict, expect) << s.name;
}

TEST_P(LiteratureSuite, NewTestsNeedFarFewerIterationsThanPD) {
  // Table 1's headline: "between 5 and 100 times less iterations than
  // the processor demand test". Assert a conservative 3x floor.
  const LiteratureSet s = set();
  const auto pd = processor_demand_test(s.tasks);
  const auto dyn = dynamic_error_test(s.tasks);
  const auto aa = all_approx_test(s.tasks);
  EXPECT_GE(pd.iterations, 3 * dyn.effort()) << s.name;
  EXPECT_GE(pd.iterations, 3 * aa.effort()) << s.name;
}

TEST_P(LiteratureSuite, DeviAcceptedSetsCostTheSameForNewTests) {
  // Table 1 rows Burns and GAP: Devi == Dynamic == AllApprox == n.
  const LiteratureSet s = set();
  if (!s.devi_accepts) return;
  const auto dyn = dynamic_error_test(s.tasks);
  const auto aa = all_approx_test(s.tasks);
  EXPECT_EQ(dyn.iterations, s.tasks.size()) << s.name;
  EXPECT_EQ(dyn.revisions, 0u) << s.name;
  EXPECT_EQ(aa.iterations, s.tasks.size()) << s.name;
  EXPECT_EQ(aa.revisions, 0u) << s.name;
}

std::string literature_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"Burns", "MaShin", "GAP", "Gresser1",
                                      "Gresser2"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSets, LiteratureSuite, ::testing::Range(0, 5),
                         literature_name);

TEST(Literature, GresserSetsComeFromEventStreams) {
  // The Gresser reconstructions must contain burst elements: several
  // tasks sharing a period with staggered deadlines.
  for (const auto& s : {gresser1_set(), gresser2_set()}) {
    int burst_elements = 0;
    for (std::size_t i = 0; i < s.tasks.size(); ++i) {
      for (std::size_t j = i + 1; j < s.tasks.size(); ++j) {
        if (s.tasks[i].period == s.tasks[j].period &&
            s.tasks[i].wcet == s.tasks[j].wcet &&
            s.tasks[i].deadline != s.tasks[j].deadline) {
          ++burst_elements;
        }
      }
    }
    EXPECT_GT(burst_elements, 0) << s.name;
  }
}

TEST(Literature, AllSetsHaveHighUtilization) {
  for (const auto& s : all_literature_sets()) {
    EXPECT_GT(s.tasks.utilization_double(), 0.9) << s.name;
    EXPECT_LE(s.tasks.utilization_double(), 1.0) << s.name;
  }
}

}  // namespace
}  // namespace edfkit::lit
