#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(OnlineStats, SingleAndEmpty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(4);
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 20);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SampleSet, QuantilesOnKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 42.0}) h.add(x);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(h.bin_count(1), 1u);  // 2.0
  EXPECT_EQ(h.bin_count(4), 1u);  // 9.99
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace edfkit
