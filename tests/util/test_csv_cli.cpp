#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"

namespace edfkit {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "edfkit_csv_test.csv";
  {
    CsvWriter w(path);
    w.header({"a", "b", "c"});
    w.row_of(1, 2.5, "x");
  }
  EXPECT_EQ(slurp(path), "a,b,c\n1,2.5,x\n");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSeparatorsAndQuotes) {
  const std::string path = ::testing::TempDir() + "edfkit_csv_esc.csv";
  {
    CsvWriter w(path);
    w.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  }
  EXPECT_EQ(slurp(path),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
  std::remove(path.c_str());
}

TEST(Csv, NullWriterDiscards) {
  CsvWriter w;
  EXPECT_FALSE(w.active());
  w.row_of(1, 2, 3);  // must not crash
}

TEST(Csv, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

TEST(Cli, ParsesAllFlagForms) {
  const char* argv[] = {"prog",     "--alpha", "3",    "--beta=hello",
                        "--gamma",  "pos1",    "--delta"};
  CliFlags f(7, const_cast<char**>(argv));
  EXPECT_EQ(f.program(), "prog");
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_EQ(f.get("beta", ""), "hello");
  EXPECT_EQ(f.get("gamma", ""), "pos1");  // --name value form
  EXPECT_TRUE(f.has("delta"));
  EXPECT_TRUE(f.get_bool("delta", false));  // bare flag means true
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  CliFlags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_FALSE(f.get_bool("missing", false));
}

TEST(Cli, PositionalsCollected) {
  const char* argv[] = {"prog", "one", "--k", "v", "two"};
  CliFlags f(5, const_cast<char**>(argv));
  ASSERT_EQ(f.rest().size(), 2u);
  EXPECT_EQ(f.rest()[0], "one");
  EXPECT_EQ(f.rest()[1], "two");
}

TEST(Cli, BoolValueForms) {
  const char* argv[] = {"prog", "--x=0", "--y=true", "--z=no"};
  CliFlags f(4, const_cast<char**>(argv));
  EXPECT_FALSE(f.get_bool("x", true));
  EXPECT_TRUE(f.get_bool("y", false));
  EXPECT_FALSE(f.get_bool("z", true));
}

TEST(Cli, EnvFallback) {
  const char* argv[] = {"prog", "--sets", "9"};
  CliFlags f(3, const_cast<char**>(argv));
  ::setenv("EDFKIT_TEST_ENV_VAR", "123", 1);
  EXPECT_EQ(f.get_int_env("sets", "EDFKIT_TEST_ENV_VAR", 1), 9);  // flag wins
  EXPECT_EQ(f.get_int_env("other", "EDFKIT_TEST_ENV_VAR", 1), 123);
  EXPECT_EQ(f.get_int_env("other", "EDFKIT_UNSET_VAR_XYZ", 7), 7);
  ::unsetenv("EDFKIT_TEST_ENV_VAR");
}

}  // namespace
}  // namespace edfkit
