#include "util/log.hpp"

#include <gtest/gtest.h>

namespace edfkit {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(before);
}

TEST(Log, EmitBelowThresholdIsSilentAndSafe) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  // Should be filtered; mostly asserts no crash/interleaving issues.
  EDFKIT_LOG(Debug) << "invisible " << 42;
  EDFKIT_LOG(Info) << "also invisible";
  set_log_level(before);
}

TEST(Log, StreamingComposesTypes) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);  // keep test output clean
  EDFKIT_LOG(Warn) << "x=" << 1 << " y=" << 2.5 << " z=" << "s";
  set_log_level(before);
}

}  // namespace
}  // namespace edfkit
