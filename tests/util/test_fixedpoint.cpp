#include "util/fixedpoint.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(FixedPoint, ScaleFractionBracketsTrueValue) {
  // 1/3 * S is not an integer: lo < hi and both within one unit.
  const ScaledPair p = scale_fraction(1, 3);
  EXPECT_EQ(p.hi - p.lo, 1);
  // 1/2 * S is exact.
  const ScaledPair q = scale_fraction(1, 2);
  EXPECT_EQ(q.lo, q.hi);
  EXPECT_EQ(q.lo, kFixedPointScale / 2);
}

TEST(FixedPoint, ScaleIntegerIsExact) {
  const ScaledPair p = scale_integer(7);
  EXPECT_EQ(p.lo, p.hi);
  EXPECT_EQ(p.lo, 7 * kFixedPointScale);
}

TEST(FixedPoint, CompareScaledDecidesClearCases) {
  // 3/2 vs threshold 1: certainly greater.
  EXPECT_EQ(compare_scaled(scale_fraction(3, 2), 1), ScaledCompare::Greater);
  // 1/2 vs 1: certainly <=.
  EXPECT_EQ(compare_scaled(scale_fraction(1, 2), 1),
            ScaledCompare::LessOrEqual);
  // Exactly 1 vs 1: <= (integral, no rounding).
  EXPECT_EQ(compare_scaled(scale_integer(1), 1), ScaledCompare::LessOrEqual);
}

TEST(FixedPoint, AmbiguityOnlyAtHairlineMargins) {
  // A pair straddling the threshold by construction.
  ScaledPair p = scale_fraction(1, 3);  // ~0.333*S, width 1
  p.lo = kFixedPointScale - 1;
  p.hi = kFixedPointScale + 1;
  EXPECT_EQ(compare_scaled(p, 1), ScaledCompare::Ambiguous);
}

TEST(FixedPoint, IntervalSubtractionSwapsEndpoints) {
  ScaledPair a = scale_fraction(5, 3);
  const ScaledPair b = scale_fraction(1, 3);
  a -= b;
  // True value 4/3: bounds must bracket it.
  const Int128 truth_lo = (4 * kFixedPointScale) / 3;
  EXPECT_LE(a.lo, truth_lo);
  EXPECT_GE(a.hi, truth_lo + 1);
  EXPECT_LE(a.hi - a.lo, 2);  // width grows by one unit per op
}

/// Property: sums of random fractions stay bracketed within n units.
class FixedPointSumTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedPointSumTest, SumBracketsLongDoubleReference) {
  Rng rng(GetParam());
  ScaledPair sum;
  long double ref = 0.0L;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const Time num = rng.uniform_time(0, 1'000'000);
    const Time den = rng.uniform_time(1, 1'000'000);
    sum += scale_fraction(num, den);
    ref += static_cast<long double>(num) / static_cast<long double>(den);
  }
  // The long double reference itself carries ~2^-63 relative error, so
  // compare at double precision with a relative band; the certified
  // width bound is the exact property.
  const long double lo_val =
      static_cast<long double>(sum.lo) /
      static_cast<long double>(kFixedPointScale);
  const long double band = ref * 1e-12L + 1e-9L;
  EXPECT_LE(lo_val, ref + band);
  EXPECT_GE(lo_val, ref - band);
  EXPECT_LE(sum.hi - sum.lo, n);  // each term widens by at most 1
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedPointSumTest,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace edfkit
