#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace edfkit {
namespace {

TEST(Random, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_time(0, 1'000'000), b.uniform_time(0, 1'000'000));
  }
}

TEST(Random, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform_time(0, 1'000'000) == b.uniform_time(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Random, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
    const Time t = rng.uniform_time(10, 20);
    EXPECT_GE(t, 10);
    EXPECT_LE(t, 20);
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Random, UniformTimeCoversRange) {
  Rng rng(9);
  std::set<Time> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_time(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Random, LogUniformRespectsBoundsAndSkews) {
  Rng rng(13);
  int low_half = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Time t = rng.log_uniform_time(10, 100'000);
    EXPECT_GE(t, 10);
    EXPECT_LE(t, 100'000);
    if (t < 1000) ++low_half;  // geometric midpoint of [10, 1e5] is 1e3
  }
  // Log-uniform puts about half the mass below the geometric midpoint;
  // plain uniform would put only ~1 %.
  EXPECT_GT(low_half, n / 3);
  EXPECT_LT(low_half, 2 * n / 3);
}

TEST(Random, LogUniformDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.log_uniform_time(42, 42), 42);
}

TEST(Random, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Random, ForkProducesIndependentStream) {
  Rng a(77);
  Rng child = a.fork();
  // The child does not replay the parent's stream.
  Rng b(77);
  (void)b.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.uniform_time(0, 1'000'000) == a.uniform_time(0, 1'000'000))
      ++same;
  }
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace edfkit
