#include "util/rational.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.exact());
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.to_string(), "0");
}

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.to_string(), "-3/2");
  EXPECT_TRUE(r.is_negative());
  Rational s(-6, -4);
  EXPECT_EQ(s.to_string(), "3/2");
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ((half + third).to_string(), "5/6");
  EXPECT_EQ((half - third).to_string(), "1/6");
  EXPECT_EQ((half * third).to_string(), "1/6");
  EXPECT_EQ((half / third).to_string(), "3/2");
}

TEST(Rational, CompareExact) {
  EXPECT_EQ(Rational(1, 3).compare(Rational(1, 2)), Ordering::Less);
  EXPECT_EQ(Rational(2, 4).compare(Rational(1, 2)), Ordering::Equal);
  EXPECT_EQ(Rational(5, 3).compare(Time{1}), Ordering::Greater);
  EXPECT_TRUE(Rational(7, 7).certainly_le(Time{1}));
  EXPECT_FALSE(Rational(8, 7).certainly_le(Time{1}));
  EXPECT_TRUE(Rational(8, 7).certainly_gt(Time{1}));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(Time{5}).floor(), 5);
  EXPECT_EQ(Rational(Time{5}).ceil(), 5);
}

TEST(Rational, SumOfManySmallFractionsStaysExact) {
  // Denominators share factors: the running denominator stays small.
  Rational sum;
  for (Time d = 1; d <= 64; ++d) sum += Rational(1, 1 << (d % 16));
  EXPECT_TRUE(sum.exact());
}

TEST(Rational, OverflowDegradesStickily) {
  // Large co-prime denominators blow past the int128 guard.
  Rng rng(5);
  Rational sum;
  bool degraded = false;
  for (int i = 0; i < 200 && !degraded; ++i) {
    sum += Rational(1, rng.uniform_time(1'000'000'000, 2'000'000'000));
    degraded = !sum.exact();
  }
  ASSERT_TRUE(degraded) << "expected eventual degradation";
  // Once inexact, stays inexact, and comparisons refuse to answer.
  sum += Rational(1, 2);
  EXPECT_FALSE(sum.exact());
  EXPECT_EQ(sum.compare(Time{1}), Ordering::Unknown);
  EXPECT_FALSE(sum.certainly_le(Time{1'000'000}));
  EXPECT_FALSE(sum.certainly_gt(Time{0}));
  // The double shadow remains plausible (between 0 and 200).
  EXPECT_GT(sum.to_double(), 0.0);
  EXPECT_LT(sum.to_double(), 200.0);
}

TEST(Rational, InexactConstructor) {
  const Rational r = Rational::inexact(2.5);
  EXPECT_FALSE(r.exact());
  EXPECT_DOUBLE_EQ(r.to_double(), 2.5);
  EXPECT_THROW((void)r.floor(), std::logic_error);
}

TEST(Rational, DoubleShadowTracksExactValue) {
  Rng rng(11);
  Rational sum;
  double shadow = 0.0;
  for (int i = 0; i < 50; ++i) {
    const Time num = rng.uniform_time(1, 100);
    const Time den = rng.uniform_time(1, 50);
    sum += Rational(num, den);
    shadow += static_cast<double>(num) / static_cast<double>(den);
  }
  ASSERT_TRUE(sum.exact());
  EXPECT_NEAR(sum.to_double(), shadow, 1e-9);
}

/// Property sweep: rational arithmetic against double arithmetic.
class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, MatchesDoubleWithinTolerance) {
  Rng rng(GetParam());
  Rational acc(1, 1);
  double ref = 1.0;
  for (int i = 0; i < 30; ++i) {
    const Time num = rng.uniform_time(1, 1000);
    const Time den = rng.uniform_time(1, 64);  // small denominators: exact
    const int op = rng.uniform_int(0, 2);
    const Rational x(num, den);
    const double xd = static_cast<double>(num) / static_cast<double>(den);
    switch (op) {
      case 0: acc += x; ref += xd; break;
      case 1: acc -= x; ref -= xd; break;
      default:
        // Multiply by num/(num+1) (< 1) to keep magnitudes bounded.
        acc *= Rational(num, num + 1);
        ref *= static_cast<double>(num) / static_cast<double>(num + 1);
        break;
    }
    if (!acc.exact()) return;  // degradation is allowed, not asserted here
  }
  if (acc.exact()) {
    EXPECT_NEAR(acc.to_double(), ref, std::abs(ref) * 1e-6 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Normalization/overflow edges exercised by the admission
// accumulator's exact-fallback path (sums of C/T and approx-demand
// terms compared against an integer interval). ---

TEST(RationalEdges, NormalizesInt64Extremes) {
  constexpr Time kMin = std::numeric_limits<Time>::min();
  constexpr Time kMax = std::numeric_limits<Time>::max();
  // -min overflows int64 but the internals are int128: sign
  // normalization must not wrap.
  const Rational r(kMin, kMin);
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.to_string(), "1");
  const Rational s(kMin, -1);
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(s.compare(Time{0}), Ordering::Greater);
  const Rational t(kMax, kMin);
  EXPECT_TRUE(t.is_negative());
  EXPECT_EQ((t * Rational(kMin, kMax)).to_string(), "1");
}

TEST(RationalEdges, GcdReducesLargeCommonFactors) {
  const Time big = Time{1} << 40;
  const Rational r(3 * big, 6 * big);
  EXPECT_EQ(r.to_string(), "1/2");
  // Repeated self-addition keeps the canonical form small.
  Rational acc;
  for (int i = 0; i < 1000; ++i) acc += r;
  EXPECT_TRUE(acc.exact());
  EXPECT_EQ(acc.to_string(), "500");
}

TEST(RationalEdges, ProductOfHugeCoprimeDenominatorsDegrades) {
  // Two denominators just under 2^62 with no common factor: the exact
  // product exceeds the int128 guard and must degrade, not wrap.
  const Time d1 = (Time{1} << 62) - 57;
  const Time d2 = (Time{1} << 62) - 87;
  Rational a(1, d1);
  const Rational b(1, d2);
  Rational prod = a * b;
  // Whether the representation stayed exact or degraded, the comparison
  // must never be *wrong* — Unknown is the honest answer when the
  // cross-products would overflow the int128 guard.
  const Ordering c = prod.compare(Time{1});
  EXPECT_TRUE(c == Ordering::Less || c == Ordering::Unknown);
  EXPECT_FALSE(prod.certainly_gt(Time{1}));
  // Summing many such terms is the accumulator fallback's shape.
  Rational sum;
  for (Time i = 0; i < 64; ++i) sum += Rational(1, d1 - 2 * i);
  if (sum.exact()) {
    EXPECT_TRUE(sum.certainly_le(Time{1}));
  } else {
    EXPECT_FALSE(sum.certainly_le(Time{1}));
    EXPECT_FALSE(sum.certainly_gt(Time{0}));
  }
}

TEST(RationalEdges, InexactPropagatesThroughEveryOperator) {
  const Rational bad = Rational::inexact(0.5);
  const Rational good(1, 2);
  EXPECT_FALSE((bad + good).exact());
  EXPECT_FALSE((good - bad).exact());
  EXPECT_FALSE((bad * good).exact());
  EXPECT_FALSE((good / bad).exact());
  EXPECT_EQ((bad + good).compare(good), Ordering::Unknown);
  EXPECT_FALSE(bad == bad);  // inexact values never compare equal
}

TEST(RationalEdges, ComparisonAgainstIntervalBoundary) {
  // The accumulator's verdicts hinge on demand-vs-interval compares at
  // exact equality; these must be decided, not approximated.
  const Time interval = 999'983;  // prime
  Rational demand(interval * 7, 7);
  EXPECT_EQ(demand.compare(interval), Ordering::Equal);
  EXPECT_TRUE(demand.certainly_le(interval));
  EXPECT_FALSE(demand.certainly_gt(interval));
  demand += Rational(1, interval);
  EXPECT_EQ(demand.compare(interval), Ordering::Greater);
  demand -= Rational(2, interval);
  EXPECT_EQ(demand.compare(interval), Ordering::Less);
}

TEST(RationalEdges, FloorCeilAtExactIntegers) {
  const Rational r(-12, 4);
  EXPECT_EQ(r.floor(), -3);
  EXPECT_EQ(r.ceil(), -3);
  const Rational q((Time{1} << 50) * 3, Time{3});
  EXPECT_EQ(q.floor(), Time{1} << 50);
  EXPECT_EQ(q.ceil(), Time{1} << 50);
}

}  // namespace
}  // namespace edfkit
