#include "util/rational.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.exact());
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.to_string(), "0");
}

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.to_string(), "-3/2");
  EXPECT_TRUE(r.is_negative());
  Rational s(-6, -4);
  EXPECT_EQ(s.to_string(), "3/2");
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ((half + third).to_string(), "5/6");
  EXPECT_EQ((half - third).to_string(), "1/6");
  EXPECT_EQ((half * third).to_string(), "1/6");
  EXPECT_EQ((half / third).to_string(), "3/2");
}

TEST(Rational, CompareExact) {
  EXPECT_EQ(Rational(1, 3).compare(Rational(1, 2)), Ordering::Less);
  EXPECT_EQ(Rational(2, 4).compare(Rational(1, 2)), Ordering::Equal);
  EXPECT_EQ(Rational(5, 3).compare(Time{1}), Ordering::Greater);
  EXPECT_TRUE(Rational(7, 7).certainly_le(Time{1}));
  EXPECT_FALSE(Rational(8, 7).certainly_le(Time{1}));
  EXPECT_TRUE(Rational(8, 7).certainly_gt(Time{1}));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(Time{5}).floor(), 5);
  EXPECT_EQ(Rational(Time{5}).ceil(), 5);
}

TEST(Rational, SumOfManySmallFractionsStaysExact) {
  // Denominators share factors: the running denominator stays small.
  Rational sum;
  for (Time d = 1; d <= 64; ++d) sum += Rational(1, 1 << (d % 16));
  EXPECT_TRUE(sum.exact());
}

TEST(Rational, OverflowDegradesStickily) {
  // Large co-prime denominators blow past the int128 guard.
  Rng rng(5);
  Rational sum;
  bool degraded = false;
  for (int i = 0; i < 200 && !degraded; ++i) {
    sum += Rational(1, rng.uniform_time(1'000'000'000, 2'000'000'000));
    degraded = !sum.exact();
  }
  ASSERT_TRUE(degraded) << "expected eventual degradation";
  // Once inexact, stays inexact, and comparisons refuse to answer.
  sum += Rational(1, 2);
  EXPECT_FALSE(sum.exact());
  EXPECT_EQ(sum.compare(Time{1}), Ordering::Unknown);
  EXPECT_FALSE(sum.certainly_le(Time{1'000'000}));
  EXPECT_FALSE(sum.certainly_gt(Time{0}));
  // The double shadow remains plausible (between 0 and 200).
  EXPECT_GT(sum.to_double(), 0.0);
  EXPECT_LT(sum.to_double(), 200.0);
}

TEST(Rational, InexactConstructor) {
  const Rational r = Rational::inexact(2.5);
  EXPECT_FALSE(r.exact());
  EXPECT_DOUBLE_EQ(r.to_double(), 2.5);
  EXPECT_THROW((void)r.floor(), std::logic_error);
}

TEST(Rational, DoubleShadowTracksExactValue) {
  Rng rng(11);
  Rational sum;
  double shadow = 0.0;
  for (int i = 0; i < 50; ++i) {
    const Time num = rng.uniform_time(1, 100);
    const Time den = rng.uniform_time(1, 50);
    sum += Rational(num, den);
    shadow += static_cast<double>(num) / static_cast<double>(den);
  }
  ASSERT_TRUE(sum.exact());
  EXPECT_NEAR(sum.to_double(), shadow, 1e-9);
}

/// Property sweep: rational arithmetic against double arithmetic.
class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, MatchesDoubleWithinTolerance) {
  Rng rng(GetParam());
  Rational acc(1, 1);
  double ref = 1.0;
  for (int i = 0; i < 30; ++i) {
    const Time num = rng.uniform_time(1, 1000);
    const Time den = rng.uniform_time(1, 64);  // small denominators: exact
    const int op = rng.uniform_int(0, 2);
    const Rational x(num, den);
    const double xd = static_cast<double>(num) / static_cast<double>(den);
    switch (op) {
      case 0: acc += x; ref += xd; break;
      case 1: acc -= x; ref -= xd; break;
      default:
        // Multiply by num/(num+1) (< 1) to keep magnitudes bounded.
        acc *= Rational(num, num + 1);
        ref *= static_cast<double>(num) / static_cast<double>(num + 1);
        break;
    }
    if (!acc.exact()) return;  // degradation is allowed, not asserted here
  }
  if (acc.exact()) {
    EXPECT_NEAR(acc.to_double(), ref, std::abs(ref) * 1e-6 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace edfkit
