#include "util/math.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace edfkit {
namespace {

TEST(Math, FloorDivMatchesMathematicalFloor) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(8, 2), 4);
  EXPECT_EQ(floor_div(-1, 2), -1);
  EXPECT_EQ(floor_div(-4, 2), -2);
  EXPECT_EQ(floor_div(-7, 3), -3);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(Math, CeilDivMatchesMathematicalCeil) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(ceil_div(-1, 2), 0);
  EXPECT_EQ(ceil_div(-7, 3), -2);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(Math, FloorCeilConsistency) {
  for (Time n = -50; n <= 50; ++n) {
    for (Time d = 1; d <= 7; ++d) {
      EXPECT_LE(floor_div(n, d) * d, n);
      EXPECT_GT((floor_div(n, d) + 1) * d, n);
      EXPECT_GE(ceil_div(n, d) * d, n);
      EXPECT_LT((ceil_div(n, d) - 1) * d, n);
      EXPECT_EQ(floor_mod(n, d), n - floor_div(n, d) * d);
      EXPECT_GE(floor_mod(n, d), 0);
      EXPECT_LT(floor_mod(n, d), d);
    }
  }
}

TEST(Math, GcdBasics) {
  EXPECT_EQ(gcd_time(12, 18), 6);
  EXPECT_EQ(gcd_time(18, 12), 6);
  EXPECT_EQ(gcd_time(7, 13), 1);
  EXPECT_EQ(gcd_time(0, 9), 9);
  EXPECT_EQ(gcd_time(9, 0), 9);
}

TEST(Math, LcmSaturates) {
  EXPECT_EQ(lcm_saturating(4, 6), 12);
  EXPECT_EQ(lcm_saturating(0, 6), 0);
  const Time big = kTimeInfinity - 1;
  EXPECT_EQ(lcm_saturating(big, big - 1), kTimeInfinity);
  EXPECT_EQ(lcm_saturating(kTimeInfinity, 2), kTimeInfinity);
}

TEST(Math, AddSaturates) {
  EXPECT_EQ(add_saturating(2, 3), 5);
  EXPECT_EQ(add_saturating(kTimeInfinity, 1), kTimeInfinity);
  EXPECT_EQ(add_saturating(kTimeInfinity, kTimeInfinity), kTimeInfinity);
  EXPECT_TRUE(is_time_infinite(add_saturating(kTimeInfinity - 1, 5)));
}

TEST(Math, MulSaturates) {
  EXPECT_EQ(mul_saturating(6, 7), 42);
  EXPECT_EQ(mul_saturating(0, kTimeInfinity), 0);
  EXPECT_EQ(mul_saturating(kTimeInfinity, 2), kTimeInfinity);
  EXPECT_EQ(mul_saturating(1'000'000'000, 10'000'000'000), kTimeInfinity);
}

TEST(Math, MulWideNeverOverflows) {
  const Time m = std::numeric_limits<Time>::max();
  const Int128 p = mul_wide(m, m);
  EXPECT_GT(p, 0);
  EXPECT_EQ(int128_to_string(mul_wide(3, -4)), "-12");
}

TEST(Math, NarrowTimeThrowsOutOfRange) {
  EXPECT_EQ(narrow_time(Int128{42}), 42);
  EXPECT_EQ(narrow_time(Int128{-42}), -42);
  const Int128 too_big = mul_wide(std::numeric_limits<Time>::max(), 2);
  EXPECT_THROW((void)narrow_time(too_big), std::overflow_error);
}

TEST(Math, Int128ToString) {
  EXPECT_EQ(int128_to_string(0), "0");
  EXPECT_EQ(int128_to_string(123456789), "123456789");
  EXPECT_EQ(int128_to_string(-987), "-987");
  // 2^100 computed independently.
  Int128 v = 1;
  for (int i = 0; i < 100; ++i) v *= 2;
  EXPECT_EQ(int128_to_string(v), "1267650600228229401496703205376");
}

TEST(Math, RoundToTimeClampsAndRounds) {
  EXPECT_EQ(round_to_time(3.4, 0, 100), 3);
  EXPECT_EQ(round_to_time(3.5, 0, 100), 4);  // nearbyint: banker's or half-up
  EXPECT_EQ(round_to_time(-5.0, 1, 100), 1);
  EXPECT_EQ(round_to_time(1e30, 1, 100), 100);
}

}  // namespace
}  // namespace edfkit
