/// \file test_kernel_equivalence.cpp
/// Differential fuzz suite pinning the SoA demand kernel
/// (demand/task_view.hpp) and the cached-slack index
/// (admission/incremental_dbf.hpp) to the legacy scan semantics: flat
/// columns must agree with Task/TaskSet arithmetic everywhere
/// (including add_saturating overflow edges), and an IncrementalDemand
/// with the slack index enabled must decide exactly like one without
/// it on identical churn sequences — U -> 1 saturation and
/// removal-credit churn included.
#include <gtest/gtest.h>

#include <vector>

#include "admission/incremental_dbf.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "core/superpos.hpp"
#include "demand/dbf.hpp"
#include "demand/task_view.hpp"
#include "gen/scenario.hpp"
#include "helpers.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

// --------------------------------------------------------------- columns

TEST(KernelEquivalence, ColumnsMatchTaskArithmeticOnRandomSets) {
  // 600 random sets x several probe intervals: every flat-row helper
  // must agree with the Task-struct arithmetic it replaced.
  Rng rng(20050301);
  for (int trial = 0; trial < 600; ++trial) {
    const double u = 0.3 + 0.0012 * trial;  // spans into U > 1 territory
    const TaskSet ts = draw_small_set(rng, u);
    const TaskColumns cols(ts.tasks());
    ASSERT_EQ(cols.size(), ts.size());
    for (int probe = 0; probe < 8; ++probe) {
      const Time i = rng.uniform_time(1, 5000);
      ASSERT_EQ(columns_dbf(cols, i), dbf(ts, i)) << "I=" << i;
      for (std::size_t r = 0; r < ts.size(); ++r) {
        ASSERT_EQ(row_dbf(cols, r, i), dbf(ts[r], i));
        ASSERT_EQ(row_next_deadline_after(cols, r, i),
                  ts[r].next_deadline_after(i));
        ASSERT_EQ(row_job_deadline(cols, r, probe),
                  ts[r].job_deadline(probe));
      }
    }
  }
}

TEST(KernelEquivalence, ColumnsSaturateExactlyLikeDbf) {
  // add_saturating overflow edges: near-infinite WCETs and deadlines
  // must saturate identically through the flat path.
  const Time huge = kTimeInfinity / 2;
  TaskSet ts;
  ts.add(tk(huge, huge, kTimeInfinity));      // one-shot, giant C
  ts.add(tk(huge, huge + 10, kTimeInfinity));
  ts.add(tk(3, 7, 11));
  const TaskColumns cols(ts.tasks());
  for (const Time i : {Time{1}, Time{7}, huge, huge + 5, huge + 10,
                       kTimeInfinity - 1}) {
    EXPECT_EQ(columns_dbf(cols, i), dbf(ts, i)) << "I=" << i;
  }
  EXPECT_TRUE(is_time_infinite(columns_dbf(cols, kTimeInfinity - 1)));
  // Predecessor-deadline scan agrees with the per-task formula at the
  // saturation boundary too.
  const Time below = columns_max_deadline_below(cols, kTimeInfinity);
  EXPECT_GE(below, huge + 10);
}

TEST(KernelEquivalence, TaskViewSlotsSurviveChurn) {
  // Slot handles stay valid across swap-removes; dense rows and the
  // zero-copy TaskSet always agree with the surviving tasks.
  Rng rng(7);
  TaskView view;
  std::vector<std::pair<TaskView::Slot, Task>> live;
  for (int op = 0; op < 2000; ++op) {
    if (!live.empty() && rng.bernoulli(0.45)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_time(0, static_cast<Time>(live.size()) - 1));
      ASSERT_TRUE(view.remove(live[pick].first));
      live[pick] = live.back();
      live.pop_back();
    } else {
      const Task t = tk(1 + rng.uniform_time(1, 9),
                        10 + rng.uniform_time(0, 90),
                        100 + rng.uniform_time(0, 900));
      live.emplace_back(view.add(t), t);
    }
    ASSERT_EQ(view.size(), live.size());
    ASSERT_EQ(view.as_task_set().size(), live.size());
    if (op % 64 == 0) {
      for (const auto& [slot, t] : live) {
        ASSERT_TRUE(view.contains(slot));
        ASSERT_EQ(view[slot], t);
        const std::size_t row = view.row_of(slot);
        ASSERT_EQ(view.columns().wcet[row], t.wcet);
        ASSERT_EQ(view.columns().deadline[row], t.effective_deadline());
        ASSERT_EQ(view.slot_of(row), slot);
      }
    }
  }
}

// ------------------------------------------------------ offline backends

TEST(KernelEquivalence, RewiredBackendsMatchBruteForceOverflow) {
  // The SoA-rewired exact scans (processor-demand, QPA) must agree
  // with the brute-force dbf walk on 300 random sets around U = 1.
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    const double u = 0.85 + 0.0007 * trial;
    const TaskSet ts = draw_small_set(rng, u);
    const FeasibilityResult pd = processor_demand_test(ts);
    const FeasibilityResult qp = qpa_test(ts);
    ASSERT_EQ(pd.verdict, qp.verdict) << ts.to_string();
    if (pd.infeasible() && pd.witness >= 0) {
      ASSERT_GT(dbf(ts, pd.witness), pd.witness) << ts.to_string();
    }
    if (!utilization_exceeds_one(ts)) {
      const Time brute = first_overflow_brute(ts, 2000);
      if (brute >= 0) {
        ASSERT_TRUE(pd.infeasible()) << "overflow at " << brute << "\n"
                                     << ts.to_string();
      }
    }
    // The sufficient superposition test stays sound: an accept implies
    // the exact tests accept.
    const FeasibilityResult sp = superpos_test(ts, 3);
    if (sp.feasible()) {
      ASSERT_TRUE(pd.feasible()) << ts.to_string();
    }
  }
}

// ---------------------------------------------- cached-slack index fuzz

struct TwinDemand {
  IncrementalDemand plain{0.25, /*use_slack_index=*/false};
  IncrementalDemand indexed{0.25, /*use_slack_index=*/true};
  std::vector<std::pair<TaskId, TaskId>> live;  // (plain id, indexed id)

  TwinDemand() {
    // These sets are small; force the index to engage regardless of the
    // resident-count hysteresis so the twin genuinely diverges in
    // mechanism (bounds maintained, segments partitioned) while
    // verdicts must stay identical.
    indexed.set_index_thresholds(0, 0);
  }

  void arrive(const Task& t) {
    live.emplace_back(plain.add(t), indexed.add(t));
  }
  void depart(std::size_t pick) {
    ASSERT_TRUE(plain.remove(live[pick].first));
    ASSERT_TRUE(indexed.remove(live[pick].second));
    live[pick] = live.back();
    live.pop_back();
  }
  void check_agreement(int tag) {
    const DemandCheck a = plain.check();
    const DemandCheck b = indexed.check();
    ASSERT_EQ(a.fits, b.fits) << "op " << tag;
    ASSERT_EQ(a.overflow_proof, b.overflow_proof) << "op " << tag;
    if (a.overflow_proof) {
      ASSERT_EQ(a.witness, b.witness) << "op " << tag;
    }
  }
};

TEST(KernelEquivalence, SlackIndexAgreesUnderSaturationChurn) {
  // U -> 1 churn: admissions ride the boundary, so scans keep failing,
  // refining, and re-passing — the regime the index accelerates. Both
  // structures must produce identical verdicts and witnesses at every
  // step, and match their own from-scratch rebuilds.
  Rng rng(20050307);
  TwinDemand twin;
  std::vector<Task> pool;
  int checked = 0;
  for (int op = 0; op < 260; ++op) {
    if (pool.empty()) {
      const TaskSet ts = draw_small_set(rng, 0.99);
      pool.assign(ts.begin(), ts.end());
    }
    if (!twin.live.empty() && rng.bernoulli(0.4)) {
      twin.depart(static_cast<std::size_t>(rng.uniform_time(
          0, static_cast<Time>(twin.live.size()) - 1)));
    } else {
      twin.arrive(pool.back());
      pool.pop_back();
    }
    twin.check_agreement(op);
    ++checked;
    if (op % 32 == 0) {
      ASSERT_TRUE(twin.plain.matches_rebuild()) << "op " << op;
      ASSERT_TRUE(twin.indexed.matches_rebuild()) << "op " << op;
    }
  }
  EXPECT_GE(checked, 260);
}

TEST(KernelEquivalence, SlackIndexAgreesUnderRemovalCreditChurn) {
  // Departure-heavy churn exercises the credit path (removals restore
  // cached slack): drain and refill the structure repeatedly.
  Rng rng(99);
  TwinDemand twin;
  for (int round = 0; round < 12; ++round) {
    const TaskSet ts = draw_small_set(rng, 0.9);
    for (const Task& t : ts) {
      twin.arrive(t);
      twin.check_agreement(round);
    }
    // Drain most of the resident set, checking after every removal.
    while (twin.live.size() > 2) {
      twin.depart(static_cast<std::size_t>(rng.uniform_time(
          0, static_cast<Time>(twin.live.size()) - 1)));
      twin.check_agreement(round);
    }
  }
  ASSERT_TRUE(twin.indexed.matches_rebuild());
}

TEST(KernelEquivalence, SlackIndexAgreesOnLargeStructures) {
  // Push past the single-segment threshold (192 checkpoints) so the
  // index genuinely partitions, then churn at the boundary.
  Rng rng(1234);
  TwinDemand twin;
  std::vector<Task> pool;
  for (int op = 0; op < 400; ++op) {
    if (pool.empty()) {
      const TaskSet ts = draw_fig8_set(rng, 0.97);
      pool.assign(ts.begin(), ts.end());
    }
    if (!twin.live.empty() && rng.bernoulli(0.2)) {
      twin.depart(static_cast<std::size_t>(rng.uniform_time(
          0, static_cast<Time>(twin.live.size()) - 1)));
    } else {
      twin.arrive(pool.back());
      pool.pop_back();
    }
    twin.check_agreement(op);
  }
  EXPECT_GT(twin.indexed.checkpoint_count(), std::size_t{192});
  ASSERT_TRUE(twin.indexed.matches_rebuild());
}

TEST(KernelEquivalence, SlackIndexAgreesOnSaturatingOneShots) {
  // add_saturating overflow edges inside the incremental structure:
  // giant one-shot WCETs saturate exact_dbf_at identically on both
  // paths, and verdicts still agree.
  TwinDemand twin;
  const Time huge = kTimeInfinity / 3;
  twin.arrive(tk(huge, huge, kTimeInfinity));
  twin.check_agreement(0);
  twin.arrive(tk(huge, huge, kTimeInfinity));
  twin.check_agreement(1);
  twin.arrive(tk(huge, huge, kTimeInfinity));  // 3x huge saturates
  twin.check_agreement(2);
  for (const Time i : {huge, huge + 1, kTimeInfinity - 1}) {
    ASSERT_EQ(twin.plain.exact_dbf_at(i), twin.indexed.exact_dbf_at(i));
    ASSERT_EQ(twin.plain.exact_dbf_at(i),
              dbf(twin.plain.snapshot(), i));
  }
  // The triple overload is a genuine infeasibility: one-shots carry no
  // approximation, so both paths prove it.
  const DemandCheck c = twin.indexed.check();
  EXPECT_FALSE(c.fits);
  EXPECT_TRUE(c.overflow_proof);
}

TEST(KernelEquivalence, CertificatesStaySoundWithIndex) {
  // Fast-path admits through the indexed structure must still be
  // feasibility proofs (the certificate calculus is shared, but the
  // published values now flow through segment bounds).
  Rng rng(11);
  int covered = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const TaskSet ts = draw_small_set(rng, 0.6);
    IncrementalDemand d(0.25, /*use_slack_index=*/true);
    d.set_index_thresholds(0, 0);  // engage on these small sets too
    for (const Task& t : ts) d.add(t);
    if (!d.check().fits) continue;
    const TaskSet extra = draw_small_set(rng, 0.2);
    for (const Task& t : extra) {
      if (!d.certificate_covers(t)) continue;
      ++covered;
      d.add(t);
      ASSERT_TRUE(processor_demand_test(d.resident()).feasible())
          << d.resident().to_string();
    }
  }
  EXPECT_GT(covered, 5);  // the fast path actually fires
}

}  // namespace
}  // namespace edfkit
