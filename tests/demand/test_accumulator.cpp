#include "demand/accumulator.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "demand/approx.hpp"
#include "demand/dbf.hpp"
#include "util/fixedpoint.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(Accumulator, ExactJobsOnly) {
  DemandAccumulator acc;
  acc.add_job(3);
  acc.add_job(4);
  EXPECT_EQ(acc.compare_demand(7), Ordering::Less);    // 7 <= 7
  EXPECT_EQ(acc.compare_demand(6), Ordering::Greater); // 7 > 6
}

TEST(Accumulator, ApproximatedSlopeAccrues) {
  const Task t = testing::tk(2, 10, 10);  // utilization 1/5
  const TaskSet ts = testing::set_of({t});
  const std::vector<bool> approx = {true};
  DemandAccumulator acc;
  acc.add_job(t.wcet);   // frontier at the first deadline, demand 2
  acc.approximate(t);
  acc.advance(10);       // +10 * 1/5 = 2 -> demand 4 at I=20
  // The raw interval decides clear thresholds...
  EXPECT_EQ(acc.compare_demand(5), Ordering::Less);
  EXPECT_EQ(acc.compare_demand(3), Ordering::Greater);
  // ...and is ambiguous exactly at the hairline (2^62 % 5 != 0), where
  // the refresh path (at the frontier, I = 20) settles cleanly.
  EXPECT_EQ(acc.compare_demand(4), Ordering::Unknown);
  bool degraded = false;
  EXPECT_EQ(acc.compare_with_refresh(ts, approx, 20, &degraded),
            Ordering::Less);
  EXPECT_FALSE(degraded);
}

TEST(Accumulator, ReviseRestoresExactDemand) {
  // Approximate at the first deadline, advance past it, revise: the
  // value must equal the exact dbf again.
  const Task t = testing::tk(3, 8, 10);
  DemandAccumulator acc;
  acc.add_job(t.wcet);
  acc.approximate(t);
  acc.advance(5);  // frontier 13; envelope = 3*(13-8+10)/10 = 4.5
  acc.revise(t, 13);  // exact dbf(13) = 3
  EXPECT_EQ(acc.compare_demand(4), Ordering::Less);
  EXPECT_EQ(acc.compare_demand(2), Ordering::Greater);
}

TEST(Accumulator, CompareWithRefreshSettlesEquality) {
  // Construct a case where dbf' == I exactly (utilization 1/2 task,
  // approximated; at I = 16 the envelope is 8 exactly... pick values so
  // the incremental interval straddles and rationals resolve it).
  const Task t = testing::tk(5, 10, 10);
  const TaskSet ts = testing::set_of({t});
  std::vector<bool> approx = {true};
  DemandAccumulator acc;
  acc.add_job(t.wcet);
  acc.approximate(t);
  acc.advance(10);  // frontier 20: envelope 5*(20-10+10)/10 = 10
  bool degraded = false;
  // demand exactly 10 vs capacity 10: must be proven <=.
  EXPECT_EQ(acc.compare_with_refresh(ts, approx, 20, &degraded),
            Ordering::Less);
  EXPECT_FALSE(degraded);
}

TEST(RecomputeScaled, BracketsRationalRecompute) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.4, 1.0));
    std::vector<bool> approx(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) approx[i] = rng.bernoulli(0.5);
    // Only intervals at/after each approximated task's first deadline
    // are meaningful envelope inputs; use a large interval.
    const Time interval = 500 + rng.uniform_time(0, 500);
    const ScaledDemand sd = recompute_demand_scaled(ts, approx, interval);
    const Rational exact = recompute_demand(ts, approx, interval);
    ASSERT_TRUE(exact.exact());
    const double val = exact.to_double();
    const double s = static_cast<double>(kFixedPointScale);
    EXPECT_LE(static_cast<double>(sd.lo) / s, val + 1e-9);
    EXPECT_GE(static_cast<double>(sd.hi) / s, val - 1e-9);
  }
}

/// Property: an incremental walk over every task's first deadline
/// (advance + add_job + approximate, ties grouped) stays within one
/// fixed-point unit per operation of the from-scratch recompute.
class AccumulatorWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccumulatorWalk, IncrementalMatchesRecompute) {
  Rng rng(GetParam());
  const TaskSet ts = draw_small_set(rng, rng.uniform(0.4, 0.95));
  std::vector<bool> approximated(ts.size(), false);
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ts[a].effective_deadline() < ts[b].effective_deadline();
  });
  DemandAccumulator acc;
  Time frontier = 0;
  std::size_t k = 0;
  while (k < order.size()) {
    const Time point = ts[order[k]].effective_deadline();
    acc.advance(point - frontier);
    frontier = point;
    // Drain every task whose first deadline sits at this point, so the
    // incremental state and the approximated[] flags describe the same
    // configuration before comparing.
    while (k < order.size() &&
           ts[order[k]].effective_deadline() == point) {
      acc.add_job(ts[order[k]].wcet);
      acc.approximate(ts[order[k]]);
      approximated[order[k]] = true;
      ++k;
    }
    const ScaledDemand sd = recompute_demand_scaled(ts, approximated, point);
    // Any comparison the fresh bounds decide at the frontier, the
    // incremental state must decide identically (same true value).
    const ScaledCompare fresh =
        compare_scaled(ScaledPair{sd.lo, sd.hi}, point);
    bool degraded = false;
    DemandAccumulator copy = acc;
    const Ordering inc =
        copy.compare_with_refresh(ts, approximated, point, &degraded);
    EXPECT_FALSE(degraded);
    if (fresh == ScaledCompare::LessOrEqual) {
      EXPECT_NE(inc, Ordering::Greater) << "point " << point;
    } else if (fresh == ScaledCompare::Greater) {
      EXPECT_EQ(inc, Ordering::Greater) << "point " << point;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccumulatorWalk,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace edfkit
