#include "demand/dbf.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Dbf, SingleTaskStaircase) {
  const Task t = testing::tk(2, 7, 10);
  EXPECT_EQ(dbf(t, 0), 0);
  EXPECT_EQ(dbf(t, 6), 0);
  EXPECT_EQ(dbf(t, 7), 2);
  EXPECT_EQ(dbf(t, 16), 2);
  EXPECT_EQ(dbf(t, 17), 4);
  EXPECT_EQ(dbf(t, 107), 22);
  EXPECT_EQ(dbf_jobs(t, 107), 11);
}

TEST(Dbf, ArbitraryDeadlineTask) {
  const Task t = testing::tk(3, 15, 10);  // D > T
  EXPECT_EQ(dbf(t, 14), 0);
  EXPECT_EQ(dbf(t, 15), 3);
  EXPECT_EQ(dbf(t, 25), 6);
}

TEST(Dbf, OneShotTask) {
  const Task t = testing::tk(4, 9, kTimeInfinity);
  EXPECT_EQ(dbf(t, 8), 0);
  EXPECT_EQ(dbf(t, 9), 4);
  EXPECT_EQ(dbf(t, 1'000'000), 4);
}

TEST(Dbf, SetSuperposition) {
  const TaskSet ts = set_of({tk(1, 4, 8), tk(2, 6, 12)});
  EXPECT_EQ(dbf(ts, 3), 0);
  EXPECT_EQ(dbf(ts, 4), 1);
  EXPECT_EQ(dbf(ts, 6), 3);
  EXPECT_EQ(dbf(ts, 12), 4);   // jobs: a at 4,12 -> 2; b at 6 -> 1
  EXPECT_EQ(dbf(ts, 18), 6);   // a: 4,12 (2); b: 6,18 (2)
}

TEST(Dbf, MonotoneNondecreasing) {
  Rng rng(3);
  const TaskSet ts = draw_small_set(rng, 0.8);
  Time prev = 0;
  for (Time i = 0; i <= 500; ++i) {
    const Time v = dbf(ts, i);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Rbf, CeilSemantics) {
  const Task t = testing::tk(2, 7, 10);
  EXPECT_EQ(rbf(t, 0), 0);
  EXPECT_EQ(rbf(t, 1), 2);
  EXPECT_EQ(rbf(t, 10), 2);
  EXPECT_EQ(rbf(t, 11), 4);
  const Task one_shot = testing::tk(3, 5, kTimeInfinity);
  EXPECT_EQ(rbf(one_shot, 1), 3);
}

TEST(Rbf, DominatesDbf) {
  Rng rng(17);
  const TaskSet ts = draw_small_set(rng, 0.9);
  for (Time i = 0; i <= 400; ++i) {
    EXPECT_GE(rbf(ts, i), dbf(ts, i)) << "interval " << i;
  }
}

TEST(DemandSlack, SignMatchesOverload) {
  const TaskSet ok = set_of({tk(1, 4, 8)});
  EXPECT_GE(demand_slack(ok, 4), 0);
  const TaskSet bad = set_of({tk(5, 4, 8)});
  EXPECT_LT(demand_slack(bad, 4), 0);
}

TEST(FirstOverflowBrute, FindsKnownWitness) {
  // From the schedule_inspector example: first failure at 22.
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  EXPECT_EQ(first_overflow_brute(bad, 1000), 22);
  const TaskSet good = set_of({tk(2, 6, 8), tk(3, 10, 12), tk(4, 20, 24)});
  EXPECT_EQ(first_overflow_brute(good, 1000), -1);
}

TEST(FirstOverflowBrute, RespectsBound) {
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  EXPECT_EQ(first_overflow_brute(bad, 21), -1);  // witness 22 outside bound
}

}  // namespace
}  // namespace edfkit
