#include "demand/approx.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(Approx, BorderIsLevelthJobDeadline) {
  const Task t = testing::tk(2, 7, 10);
  EXPECT_EQ(approx_border(t, 1), 7);
  EXPECT_EQ(approx_border(t, 2), 17);
  EXPECT_EQ(approx_border(t, 5), 47);
}

TEST(Approx, EnvelopePassesThroughJobDeadlines) {
  // At job deadlines the linear envelope equals the exact dbf (the
  // approximation starts with zero error — Lemma 6's app vanishes).
  const Task t = testing::tk(3, 8, 10);
  for (Time k = 0; k < 20; ++k) {
    const Time d = t.job_deadline(k);
    EXPECT_EQ(approx_demand(t, d).compare(Rational(dbf(t, d))),
              Ordering::Equal);
    EXPECT_TRUE(approx_error(t, d).is_zero());
  }
}

TEST(Approx, ErrorIdentityEnvelopeMinusDbf) {
  const Task t = testing::tk(3, 8, 10);
  for (Time i = 8; i <= 200; ++i) {
    const Rational err = approx_error(t, i);
    const Rational diff = approx_demand(t, i) - Rational(dbf(t, i));
    EXPECT_EQ(err.compare(diff), Ordering::Equal) << "interval " << i;
    EXPECT_FALSE(err.is_negative());
  }
}

TEST(Approx, ErrorRequiresIntervalPastDeadline) {
  const Task t = testing::tk(3, 8, 10);
  EXPECT_THROW((void)approx_error(t, 7), std::invalid_argument);
}

TEST(Approx, OneShotEnvelopeIsFlat) {
  const Task t = testing::tk(5, 9, kTimeInfinity);
  EXPECT_EQ(approx_demand(t, 9).compare(Rational(Time{5})), Ordering::Equal);
  EXPECT_EQ(approx_demand(t, 900).compare(Rational(Time{5})),
            Ordering::Equal);
  EXPECT_TRUE(approx_error(t, 100).is_zero());
}

TEST(Approx, TaskDbfSwitchesAtBorder) {
  const Task t = testing::tk(2, 7, 10);
  const Time border = approx_border(t, 2);  // 17
  // Below the border: exact staircase.
  EXPECT_EQ(approx_dbf(t, 16, border).compare(Rational(dbf(t, 16))),
            Ordering::Equal);
  EXPECT_EQ(approx_dbf(t, border, border).compare(Rational(dbf(t, border))),
            Ordering::Equal);
  // Above: strictly between the staircase steps.
  const Rational v = approx_dbf(t, 22, border);
  EXPECT_EQ(v.compare(Rational(dbf(t, 22))), Ordering::Greater);
}

TEST(Approx, SetLevelRejectsZero) {
  const TaskSet ts = testing::set_of({testing::tk(1, 4, 8)});
  EXPECT_THROW((void)approx_dbf(ts, 10, 0), std::invalid_argument);
}

/// Core safety property (paper Def. 4/5): dbf'(I) >= dbf(I) everywhere,
/// for every level, and dbf' is monotone non-increasing in the level.
class ApproxDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxDominance, ApproxDominatesExactAndImprovesWithLevel) {
  Rng rng(GetParam());
  const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.0));
  for (Time i = 0; i <= 300; i += 3) {
    const Rational exact(dbf(ts, i));
    Rational prev;
    bool have_prev = false;
    for (Time level : {1, 2, 3, 5, 8}) {
      const Rational approx = approx_dbf(ts, i, level);
      EXPECT_NE(approx.compare(exact), Ordering::Less)
          << "dbf' < dbf at I=" << i << " level=" << level;
      if (have_prev) {
        EXPECT_NE(approx.compare(prev), Ordering::Greater)
            << "dbf' not monotone in level at I=" << i << " level=" << level;
      }
      prev = approx;
      have_prev = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxDominance,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace edfkit
