#include "demand/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.hpp"
#include "demand/dbf.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Profile, Validation) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  EXPECT_THROW((void)sample_demand(ts, 0), std::invalid_argument);
  EXPECT_THROW((void)sample_demand(ts, 10, 0), std::invalid_argument);
}

TEST(Profile, SamplesEveryDeadlineAndLeftLimit) {
  const TaskSet ts = set_of({tk(2, 7, 10)});
  const DemandProfile p = sample_demand(ts, 30, 2);
  // Deadlines 7, 17, 27 -> samples at 6,7,16,17,26,27.
  ASSERT_EQ(p.samples.size(), 6u);
  EXPECT_EQ(p.samples[0].interval, 6);
  EXPECT_EQ(p.samples[0].dbf, 0);
  EXPECT_EQ(p.samples[1].interval, 7);
  EXPECT_EQ(p.samples[1].dbf, 2);
  EXPECT_EQ(p.samples[3].interval, 17);
  EXPECT_EQ(p.samples[3].dbf, 4);
}

TEST(Profile, ApproxColumnsDominateExact) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.0));
    const DemandProfile p = sample_demand(ts, 300, 3);
    for (const DemandSample& s : p.samples) {
      EXPECT_GE(s.approx1 + 1e-9, static_cast<double>(s.dbf))
          << "I=" << s.interval;
      EXPECT_GE(s.approx_level + 1e-9, static_cast<double>(s.dbf))
          << "I=" << s.interval;
      EXPECT_GE(s.approx1 + 1e-9, s.approx_level) << "I=" << s.interval;
    }
  }
}

TEST(Profile, FirstOverflowMatchesDbf) {
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  const DemandProfile p = sample_demand(bad, 100, 2);
  EXPECT_EQ(p.first_overflow(), 22);
  const TaskSet good = set_of({tk(2, 6, 8), tk(3, 10, 12)});
  EXPECT_EQ(sample_demand(good, 100, 2).first_overflow(), -1);
}

TEST(Profile, PeakPressureMatchesMaxRatio) {
  const TaskSet ts = set_of({tk(4, 5, 10)});
  const DemandProfile p = sample_demand(ts, 100, 2);
  EXPECT_NEAR(p.peak_pressure(), 0.8, 1e-12);  // 4/5 at I=5
}

TEST(Profile, GnuplotFormat) {
  const TaskSet ts = set_of({tk(2, 7, 10)});
  const std::string text = format_profile(sample_demand(ts, 20, 2));
  EXPECT_NE(text.find("# I dbf"), std::string::npos);
  // One line per sample plus the header.
  std::istringstream is(text);
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 1 + 4);  // deadlines 7,17 -> samples 6,7,16,17
}

}  // namespace
}  // namespace edfkit
