#include "demand/intervals.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../helpers.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

TEST(TestList, PopsInAscendingOrderWithTaskTiebreak) {
  TestList list;
  list.add(2, 30);
  list.add(0, 10);
  list.add(1, 30);
  list.add(3, 20);
  ASSERT_EQ(list.size(), 4u);
  auto e = list.pop();
  EXPECT_EQ(e.interval, 10);
  EXPECT_EQ(e.task, 0u);
  e = list.pop();
  EXPECT_EQ(e.interval, 20);
  e = list.pop();
  EXPECT_EQ(e.interval, 30);
  EXPECT_EQ(e.task, 1u);  // ties by task index
  e = list.pop();
  EXPECT_EQ(e.interval, 30);
  EXPECT_EQ(e.task, 2u);
  EXPECT_TRUE(list.empty());
}

TEST(DeadlineStream, EnumeratesDistinctDeadlines) {
  const TaskSet ts = testing::set_of(
      {testing::tk(1, 4, 8), testing::tk(1, 4, 12), testing::tk(1, 6, 10)});
  DeadlineStream stream(ts, 30);
  std::vector<Time> got;
  while (stream.has_next()) got.push_back(stream.next());
  // Deadlines: task0: 4,12,20,28; task1: 4,16,28; task2: 6,16,26.
  const std::vector<Time> expect = {4, 6, 12, 16, 20, 26, 28};
  EXPECT_EQ(got, expect);
}

TEST(DeadlineStream, EmptyWhenBoundBelowFirstDeadline) {
  const TaskSet ts = testing::set_of({testing::tk(1, 9, 10)});
  DeadlineStream stream(ts, 8);
  EXPECT_FALSE(stream.has_next());
}

/// Property: the stream equals brute-force enumeration of all job
/// deadlines, deduplicated and sorted.
class DeadlineStreamProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DeadlineStreamProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  const TaskSet ts = draw_small_set(rng, 0.7);
  const Time bound = rng.uniform_time(10, 400);

  std::set<Time> brute;
  for (const Task& t : ts) {
    for (Time k = 0;; ++k) {
      const Time d = t.job_deadline(k);
      if (d > bound) break;
      brute.insert(d);
    }
  }
  DeadlineStream stream(ts, bound);
  std::vector<Time> got;
  while (stream.has_next()) got.push_back(stream.next());
  EXPECT_EQ(got, std::vector<Time>(brute.begin(), brute.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlineStreamProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace edfkit
