#include "sim/async.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/processor_demand.hpp"
#include "sim/edf_sim.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

AsyncTaskSet make_async(TaskSet ts, std::vector<Time> offsets) {
  AsyncTaskSet a;
  a.tasks = std::move(ts);
  a.offsets = std::move(offsets);
  return a;
}

TEST(Async, Validation) {
  AsyncTaskSet a = make_async(set_of({tk(1, 4, 8)}), {0, 0});
  EXPECT_THROW(a.validate(), std::invalid_argument);
  AsyncTaskSet b = make_async(set_of({tk(1, 4, 8)}), {-1});
  EXPECT_THROW(b.validate(), std::invalid_argument);
}

TEST(Async, SynchronousFeasibleImpliesAsyncFeasible) {
  const AsyncTaskSet a =
      make_async(set_of({tk(2, 6, 8), tk(3, 10, 12)}), {3, 5});
  EXPECT_EQ(async_feasibility(a).verdict, Verdict::Feasible);
}

TEST(Async, OverloadInfeasibleRegardlessOfPhasing) {
  const AsyncTaskSet a = make_async(set_of({tk(9, 8, 8)}), {5});
  EXPECT_EQ(async_feasibility(a).verdict, Verdict::Infeasible);
}

TEST(Async, OffsetsCanRescueASynchronouslyInfeasibleSet) {
  // Synchronously infeasible (dbf(22) = 23 > 22), but staggering the
  // releases removes the simultaneous burst.
  const TaskSet ts = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  ASSERT_EQ(processor_demand_test(ts).verdict, Verdict::Infeasible);
  // The sufficient synchronous reduction must answer Unknown (not
  // Infeasible) for any offsets:
  const AsyncTaskSet shifted = make_async(ts, {4, 0, 11});
  EXPECT_EQ(async_sufficient_test(shifted).verdict, Verdict::Unknown);
  // The exact decision comes from simulation; whatever it is, it must
  // match a brute-force simulation over the async window.
  const FeasibilityResult exact = async_feasibility(shifted);
  ASSERT_NE(exact.verdict, Verdict::Unknown);
  SimConfig sc;
  sc.horizon = 11 + 2 * ts.hyperperiod() + ts.max_deadline();
  sc.offsets = {4, 0, 11};
  const SimResult sim = simulate_edf(ts, sc);
  EXPECT_EQ(exact.verdict == Verdict::Infeasible, sim.deadline_missed);
}

TEST(Async, ZeroOffsetsMatchSynchronousExactly) {
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.6, 1.05));
    const AsyncTaskSet a = make_async(ts, std::vector<Time>(ts.size(), 0));
    const FeasibilityResult async_r = async_feasibility(a);
    const FeasibilityResult sync_r = processor_demand_test(ts);
    if (async_r.verdict != Verdict::Unknown) {
      EXPECT_EQ(async_r.verdict, sync_r.verdict) << ts.to_string();
    }
  }
}

TEST(Async, PhasingNeverHurts) {
  // If the asynchronous system with offsets is infeasible, the
  // synchronous one is too (synchronous arrival is the worst case).
  Rng rng(29);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.85, 1.05));
    std::vector<Time> offs;
    offs.reserve(ts.size());
    for (std::size_t k = 0; k < ts.size(); ++k) {
      offs.push_back(rng.uniform_time(0, 20));
    }
    const FeasibilityResult async_r =
        async_feasibility(make_async(ts, offs));
    if (async_r.verdict == Verdict::Infeasible) {
      EXPECT_EQ(processor_demand_test(ts).verdict, Verdict::Infeasible)
          << ts.to_string();
    }
  }
}

TEST(Async, RefusesHugeWindows) {
  const TaskSet ts = set_of({tk(100, 999'999'937, 999'999'937),
                             tk(100, 999'999'893, 999'999'893),
                             // make the synchronous test reject:
                             tk(999'999'000, 999'999'761, 999'999'761)});
  AsyncOptions opts;
  opts.max_horizon = 1'000'000;
  const AsyncTaskSet a = make_async(ts, {1, 2, 3});
  const FeasibilityResult r = async_feasibility(a, opts);
  // Either the synchronous stage already settles it, or we get Unknown —
  // never a fabricated exact verdict.
  if (r.verdict != Verdict::Unknown) {
    EXPECT_EQ(r.verdict, Verdict::Feasible);
  }
}

}  // namespace
}  // namespace edfkit
