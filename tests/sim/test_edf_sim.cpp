#include "sim/edf_sim.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

SimConfig traced(Time horizon) {
  SimConfig c;
  c.horizon = horizon;
  c.record_trace = true;
  c.stop_at_first_miss = false;
  return c;
}

TEST(EdfSim, ValidatesHorizon) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  SimConfig c;
  c.horizon = 0;
  EXPECT_THROW((void)simulate_edf(ts, c), std::invalid_argument);
}

TEST(EdfSim, SingleTaskSchedule) {
  const TaskSet ts = set_of({tk(2, 4, 5)});
  const SimResult r = simulate_edf(ts, traced(20));
  EXPECT_FALSE(r.deadline_missed);
  EXPECT_EQ(r.released_jobs, 4u);
  EXPECT_EQ(r.completed_jobs, 4u);
  EXPECT_EQ(r.idle_time, 20 - 8);
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_EQ(r.trace.busy_time(), 8);
}

TEST(EdfSim, EdfOrderPrefersEarlierDeadline) {
  // Both release at 0; deadlines 4 vs 10: task 0 runs first.
  const TaskSet ts = set_of({tk(2, 4, 100), tk(3, 10, 100)});
  const SimResult r = simulate_edf(ts, traced(20));
  ASSERT_GE(r.trace.slices().size(), 2u);
  EXPECT_EQ(r.trace.slices()[0].task, 0u);
  EXPECT_EQ(r.trace.slices()[0].start, 0);
  EXPECT_EQ(r.trace.slices()[0].end, 2);
  EXPECT_EQ(r.trace.slices()[1].task, 1u);
}

TEST(EdfSim, PreemptionOnEarlierDeadlineArrival) {
  // Task 1 (long, loose deadline) starts; task 0's second job arrives
  // with a tighter absolute deadline and preempts it.
  const TaskSet ts = set_of({tk(1, 3, 10), tk(15, 20, 25)});
  const SimResult r = simulate_edf(ts, traced(25));
  EXPECT_FALSE(r.deadline_missed);
  EXPECT_GE(r.preemptions, 1u);
  // Task 0's job at t=10 must run by 13 even though task 1 is mid-burst.
  const Time resp = r.trace.worst_response(0);
  EXPECT_LE(resp, 3);
}

TEST(EdfSim, NoPreemptionOnEqualDeadline) {
  // Ties broken by task index; a new equal-deadline arrival must not
  // preempt the running job.
  const TaskSet ts = set_of({tk(4, 8, 8), tk(4, 8, 8)});
  const SimResult r = simulate_edf(ts, traced(16));
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_FALSE(r.deadline_missed);
}

TEST(EdfSim, DetectsMissAtExactDeadline) {
  const TaskSet ts = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  SimConfig c;
  c.horizon = 100;
  const SimResult r = simulate_edf(ts, c);
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_EQ(r.first_miss, 22);
}

TEST(EdfSim, ContinuesPastMissWhenAsked) {
  const TaskSet ts = set_of({tk(3, 4, 8), tk(5, 10, 12), tk(5, 16, 24)});
  const SimResult r = simulate_edf(ts, traced(48));
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_EQ(r.first_miss, 22);
  EXPECT_GT(r.completed_jobs, 3u);  // kept running after the miss
}

TEST(EdfSim, BusyTimePlusIdleEqualsHorizonWhenNoBacklog) {
  const TaskSet ts = set_of({tk(2, 6, 8), tk(3, 10, 12)});
  const Time horizon = 48;
  const SimResult r = simulate_edf(ts, traced(horizon));
  EXPECT_EQ(r.trace.busy_time() + r.idle_time, horizon);
}

TEST(EdfSim, TraceSlicesAreDisjointAndOrdered) {
  Rng rng(5);
  const TaskSet ts = draw_small_set(rng, 0.9);
  const SimResult r = simulate_edf(ts, traced(300));
  Time prev_end = 0;
  for (const TraceSlice& s : r.trace.slices()) {
    EXPECT_GE(s.start, prev_end);
    EXPECT_GT(s.end, s.start);
    prev_end = s.end;
  }
}

TEST(EdfSim, WorkConservation) {
  // The processor never idles while work is pending: total busy time up
  // to any backlog-free instant equals total released work.
  const TaskSet ts = set_of({tk(2, 6, 8), tk(3, 10, 12)});
  const SimResult r = simulate_edf(ts, traced(24));
  // Hyperperiod 24, U = 1/4 + 1/4 = 1/2: releases 3+2 jobs = 12 units.
  EXPECT_EQ(r.trace.busy_time(), 3 * 2 + 2 * 3);
}

TEST(EdfSim, JitterDelaysDeadline) {
  // With jitter, absolute deadlines move later relative to release in
  // the simulator's synchronous pattern (the analysis side instead
  // tightens D; the simulator models the nominal deadline).
  TaskSet ts;
  Task t = tk(2, 8, 10);
  t.jitter = 3;
  ts.add(t);
  const SimResult r = simulate_edf(ts, traced(20));
  ASSERT_EQ(r.trace.jobs().size(), 2u);
  EXPECT_EQ(r.trace.jobs()[0].absolute_deadline, 8);
}

TEST(Trace, RenderAsciiHasOneRowPerTask) {
  const TaskSet ts = set_of({tk(1, 4, 8), tk(2, 6, 12)});
  const SimResult r = simulate_edf(ts, traced(24));
  const std::string art = r.trace.render_ascii(ts.size(), 24);
  EXPECT_NE(art.find("task0"), std::string::npos);
  EXPECT_NE(art.find("task1"), std::string::npos);
}

}  // namespace
}  // namespace edfkit
