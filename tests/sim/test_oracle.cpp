#include "sim/oracle.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "analysis/processor_demand.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "util/random.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Oracle, KnownVerdicts) {
  EXPECT_EQ(simulate_feasibility(set_of({tk(2, 6, 8), tk(3, 10, 12)}))
                .verdict,
            Verdict::Feasible);
  const FeasibilityResult bad =
      simulate_feasibility(set_of({tk(3, 4, 8), tk(5, 10, 12),
                                   tk(5, 16, 24)}));
  EXPECT_EQ(bad.verdict, Verdict::Infeasible);
  EXPECT_EQ(bad.witness, 22);
}

TEST(Oracle, RefusesIntractableHorizon) {
  const TaskSet ts = set_of({tk(1, 999'999'937, 999'999'937),
                             tk(1, 999'999'893, 999'999'893)});
  OracleConfig cfg;
  cfg.max_horizon = 1'000'000;
  EXPECT_EQ(simulate_feasibility(ts, cfg).verdict, Verdict::Unknown);
}

TEST(Oracle, OverloadShortCircuits) {
  EXPECT_EQ(simulate_feasibility(set_of({tk(9, 8, 8)})).verdict,
            Verdict::Infeasible);
}

/// THE cross-validation: an execution-based oracle and the analytical
/// demand-bound tests decide feasibility through entirely different
/// mechanisms; they must agree on every simulable workload.
class OracleAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleAgreement, SimulationMatchesAnalysis) {
  Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 30; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.5, 1.05));
    const FeasibilityResult oracle = simulate_feasibility(ts);
    if (oracle.verdict == Verdict::Unknown) continue;  // horizon refused
    const FeasibilityResult pd = processor_demand_test(ts);
    const FeasibilityResult dyn = dynamic_error_test(ts);
    const FeasibilityResult aa = all_approx_test(ts);
    EXPECT_EQ(oracle.verdict, pd.verdict) << ts.to_string();
    EXPECT_EQ(oracle.verdict, dyn.verdict) << ts.to_string();
    EXPECT_EQ(oracle.verdict, aa.verdict) << ts.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleAgreement,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(Oracle, FirstMissMatchesDemandWitnessOnInfeasibleSets) {
  // EDF misses a deadline at the first interval where demand exceeds
  // capacity; both sides must report the same instant.
  Rng rng(404);
  int found = 0;
  for (int i = 0; i < 80 && found < 10; ++i) {
    const TaskSet ts = draw_small_set(rng, rng.uniform(0.92, 1.05));
    const FeasibilityResult oracle = simulate_feasibility(ts);
    if (oracle.verdict != Verdict::Infeasible) continue;
    const FeasibilityResult pd = processor_demand_test(ts);
    ASSERT_EQ(pd.verdict, Verdict::Infeasible) << ts.to_string();
    EXPECT_EQ(oracle.witness, pd.witness) << ts.to_string();
    ++found;
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace edfkit
