#include "gen/taskset_gen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/scenario.hpp"

namespace edfkit {
namespace {

TEST(GeneratorConfig, Validation) {
  GeneratorConfig cfg;
  cfg.tasks = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.utilization = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.period_max = cfg.period_min - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.gap_mean = 0.99;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Generator, RespectsStructuralConstraints) {
  Rng rng(1);
  GeneratorConfig cfg;
  cfg.tasks = 40;
  cfg.utilization = 0.9;
  cfg.gap_mean = 0.3;
  for (int rep = 0; rep < 20; ++rep) {
    const TaskSet ts = generate_task_set(rng, cfg);
    ASSERT_EQ(ts.size(), 40u);
    for (const Task& t : ts) {
      EXPECT_GE(t.wcet, 1);
      EXPECT_LE(t.wcet, t.deadline);      // no trivially dead tasks
      EXPECT_LE(t.deadline, t.period);    // constrained deadlines
      EXPECT_GE(t.period, cfg.period_min);
      EXPECT_LE(t.period, cfg.period_max);
    }
  }
}

TEST(Generator, HitsUtilizationTolerance) {
  Rng rng(2);
  GeneratorConfig cfg;
  cfg.tasks = 25;
  for (double u : {0.7, 0.9, 0.95, 0.99}) {
    cfg.utilization = u;
    for (int rep = 0; rep < 10; ++rep) {
      const TaskSet ts = generate_task_set(rng, cfg);
      EXPECT_NEAR(ts.utilization_double(), u, cfg.utilization_tolerance + 1e-9)
          << "target " << u;
    }
  }
}

TEST(Generator, LogUniformPeriodsSpreadAcrossDecades) {
  Rng rng(3);
  GeneratorConfig cfg;
  cfg.tasks = 100;
  cfg.utilization = 0.5;
  cfg.period_min = 1'000;
  cfg.period_max = 1'000'000;
  cfg.period_dist = PeriodDistribution::LogUniform;
  int low = 0;
  const TaskSet ts = generate_task_set(rng, cfg);
  for (const Task& t : ts) {
    if (t.period < 31'623) ++low;  // geometric midpoint
  }
  EXPECT_GT(low, 25);
  EXPECT_LT(low, 75);
}

TEST(Generator, DeterministicPerSeed) {
  GeneratorConfig cfg;
  cfg.tasks = 10;
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(generate_task_set(a, cfg), generate_task_set(b, cfg));
}

TEST(Scenario, Fig1FamilyInRange) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = draw_fig1_set(rng, 0.9);
    EXPECT_GE(ts.size(), 5u);
    EXPECT_LE(ts.size(), 100u);
    EXPECT_NEAR(ts.utilization_double(), 0.9, 0.01);
  }
}

TEST(Scenario, Fig9FamilyHonorsPeriodRatio) {
  Rng rng(6);
  for (const Time ratio : {100, 10'000}) {
    for (int i = 0; i < 5; ++i) {
      const TaskSet ts = draw_fig9_set(rng, ratio);
      EXPECT_GE(ts.min_period(), 1'000);
      EXPECT_LE(ts.max_period(), 1'000 * ratio);
      EXPECT_GE(ts.utilization_double(), 0.89);
      EXPECT_LT(ts.utilization_double(), 1.0);
    }
  }
}

TEST(Scenario, SmallSetsAreSimulable) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = draw_small_set(rng, 0.8);
    EXPECT_LE(ts.hyperperiod(), 240);
    EXPECT_GE(ts.size(), 2u);
    EXPECT_LE(ts.size(), 12u);
  }
}

}  // namespace
}  // namespace edfkit
