#include "gen/uunifast.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace edfkit {
namespace {

TEST(UUniFast, Validation) {
  Rng rng(1);
  EXPECT_THROW((void)uunifast(rng, 0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)uunifast(rng, 3, 0.0), std::invalid_argument);
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(1);
  const auto us = uunifast(rng, 1, 0.7);
  ASSERT_EQ(us.size(), 1u);
  EXPECT_DOUBLE_EQ(us[0], 0.7);
}

TEST(UUniFast, SumsToTargetAndAllPositive) {
  Rng rng(2);
  for (int n : {2, 5, 20, 100}) {
    for (double total : {0.3, 0.9, 0.99}) {
      const auto us = uunifast(rng, n, total);
      ASSERT_EQ(us.size(), static_cast<std::size_t>(n));
      double sum = 0.0;
      for (double u : us) {
        EXPECT_GT(u, 0.0);
        EXPECT_LT(u, total + 1e-12);
        sum += u;
      }
      EXPECT_NEAR(sum, total, 1e-9);
    }
  }
}

TEST(UUniFast, MeanPerTaskIsUniform) {
  // Unbiasedness smoke test: each slot's average converges to U/n.
  Rng rng(3);
  const int n = 5;
  const double total = 0.8;
  std::vector<double> mean(n, 0.0);
  const int reps = 4000;
  for (int r = 0; r < reps; ++r) {
    const auto us = uunifast(rng, n, total);
    for (int i = 0; i < n; ++i) mean[static_cast<std::size_t>(i)] += us[i];
  }
  for (double& m : mean) m /= reps;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(mean[static_cast<std::size_t>(i)], total / n, 0.02)
        << "slot " << i;
  }
}

TEST(UUniFast, DeterministicPerSeed) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(uunifast(a, 10, 0.9), uunifast(b, 10, 0.9));
}

}  // namespace
}  // namespace edfkit
