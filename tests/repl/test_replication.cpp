/// \file test_replication.cpp
/// Hot-standby replication, end to end over loopback: the shipper
/// tails a live primary's journal and the follower replays it to a
/// bit-identical store (digest-compared); a record corrupted in flight
/// *after* the wire CRC is caught by the periodic digest exchange
/// within one interval and healed by a full re-seed; and the whole
/// failover story — primary dies with acked-but-unshipped operations,
/// the standby is promoted, the client walks its endpoint list,
/// re-drives the lost gap under original ids, and lands on a store
/// identical to an uninterrupted twin's, with a duplicate resend
/// answered from the dedup cache instead of applied twice.
#include "repl/shipper.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "admission/controller.hpp"
#include "admission/snapshot.hpp"
#include "fault/fault.hpp"
#include "helpers.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/obs.hpp"

namespace edfkit::repl {
namespace {

using edfkit::testing::tk;
using namespace std::chrono_literals;

std::string temp_dir(const char* tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("edfkit_repl_test_" + std::to_string(::getpid()) + "_" +
                    tag + "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

net::NetStatus status_of(const net::NetResponse& r) {
  return static_cast<net::NetStatus>(r.hdr.status);
}

/// Wait until `pred` holds, polling; fails the test on timeout.
template <typename Pred>
::testing::AssertionResult wait_for(Pred pred, std::chrono::milliseconds
                                                   timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return ::testing::AssertionFailure() << "timed out waiting";
    }
    std::this_thread::sleep_for(2ms);
  }
  return ::testing::AssertionSuccess();
}

/// Wait until the shipper's follower-acked LSN for `tenant` stops
/// moving (no change across `quiet`); returns the settled LSN.
std::uint64_t settle_acked(const Shipper& ship, const std::string& tenant,
                          std::chrono::milliseconds quiet = 150ms) {
  std::uint64_t last = ship.acked_lsn(tenant);
  auto last_change = std::chrono::steady_clock::now();
  const auto deadline = last_change + 5000ms;
  for (;;) {
    std::this_thread::sleep_for(5ms);
    const std::uint64_t now_lsn = ship.acked_lsn(tenant);
    const auto now = std::chrono::steady_clock::now();
    if (now_lsn != last) {
      last = now_lsn;
      last_change = now;
    } else if (now - last_change > quiet || now > deadline) {
      return last;
    }
  }
}

class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

// ----------------------------------------------- deterministic follow

TEST_F(ReplTest, ShipsDeterministicFollower) {
  const std::string pdir = temp_dir("ship_p");
  const std::string sdir = temp_dir("ship_s");

  net::ServerOptions sopts;
  sopts.tenants.data_dir = sdir;
  sopts.tenants.standby = true;
  net::Server standby(sopts);
  std::thread standby_loop([&] { standby.run(); });

  net::ServerOptions popts;
  popts.tenants.data_dir = pdir;
  net::Server primary(popts);
  std::thread primary_loop([&] { primary.run(); });

  ShipperOptions shop;
  shop.port = standby.port();
  shop.data_dir = pdir;
  shop.poll_interval_ms = 1;
  Shipper ship(shop);
  ship.start();

  // Drive a mixed trace through the exactly-once client: admits at
  // several spans (some reject at full utilization) plus removes, so
  // the follower must reproduce TaskId assignment, ladder placement,
  // dedup marks and eviction — not just a happy path.
  net::RetryingClient rc("127.0.0.1", primary.port(), "t", "cli");
  std::vector<TaskId> ids;
  for (int i = 0; i < 48; ++i) {
    const std::uint32_t span = 8u << (i % 4);
    const net::NetResponse r = rc.admit(tk(1, span, span));
    if (status_of(r) == net::NetStatus::Ok) ids.push_back(r.id);
    if (i % 7 == 3 && !ids.empty()) {
      (void)rc.remove(ids.back());
      ids.pop_back();
    }
  }

  // The follower catches up to the primary's full journal (op records
  // and ClientMark dedup records alike).
  const std::uint64_t shipped = settle_acked(ship, "t");
  EXPECT_GT(shipped, 0u);

  ship.stop();
  primary.stop();
  standby.stop();
  primary_loop.join();
  standby_loop.join();

  net::Tenant* p = primary.tenants().find("t");
  net::Tenant* s = standby.tenants().find("t");
  ASSERT_NE(p, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(shipped, p->journal_lsn());
  EXPECT_EQ(s->replica_lsn(), p->journal_lsn());
  EXPECT_FALSE(s->diverged());

  // Bit-identical stores, and the dedup watermark replicated with them.
  EXPECT_EQ(store_digest(s->controller()), store_digest(p->controller()));
  EXPECT_EQ(s->highest_applied("cli"), p->highest_applied("cli"));
  EXPECT_TRUE(s->controller().verify_consistency());
}

// ------------------------------------- corruption -> digest -> reseed

// Satellite: a failpoint corrupts one shipped record *after* the
// journal read (the wire frame re-CRCs the corrupted bytes, so framing
// passes and the follower applies a wrong record). The periodic digest
// exchange must catch the divergence within one interval and the
// shipper must heal it with a full re-seed; the run ends converged.
TEST_F(ReplTest, CorruptShippedRecordDetectedAndReseeded) {
  const std::string pdir = temp_dir("corrupt_p");
  const std::string sdir = temp_dir("corrupt_s");

  obs::Obs obs{obs::ObsConfig{}};

  // One Obs shared by all three parties: primary pushes digests, the
  // shipper counts mismatches/seeds sent, the standby counts seeds
  // applied — the assertions below read each side's counters.
  net::ServerOptions sopts;
  sopts.tenants.data_dir = sdir;
  sopts.tenants.standby = true;
  net::Server standby(sopts, &obs);
  std::thread standby_loop([&] { standby.run(); });

  ShipperOptions shop;
  shop.port = standby.port();
  shop.data_dir = pdir;
  shop.poll_interval_ms = 1;
  shop.max_batch_records = 4;  // the corrupted record ships alone-ish
  Shipper ship(shop, &obs);

  net::ServerOptions popts;
  popts.tenants.data_dir = pdir;
  popts.shipper = &ship;
  popts.digest_interval_ms = 10;
  net::Server primary(popts, &obs);
  std::thread primary_loop([&] { primary.run(); });
  ship.start();

  fault::point(fault::kReplCorruptSite).arm(fault::Mode::Once);

  net::RetryingClient rc("127.0.0.1", primary.port(), "t", "cli");
  for (int i = 0; i < 24; ++i) {
    (void)rc.admit(tk(1, 8u << (i % 3), 8u << (i % 3)));
    std::this_thread::sleep_for(2ms);
  }

  // Detection within one digest interval of catch-up, then the heal.
  auto& reg = obs.registry();
  EXPECT_TRUE(wait_for(
      [&] { return reg.counter_value("repl_digest_mismatches_total") >= 1; }));
  EXPECT_TRUE(wait_for(
      [&] { return reg.counter_value("repl_seeds_sent_total") >= 1; }));
  EXPECT_TRUE(wait_for(
      [&] { return reg.counter_value("repl_seeds_applied_total") >= 1; }));

  // More traffic after the heal; the follower converges again.
  for (int i = 0; i < 8; ++i) (void)rc.admit(tk(1, 8, 8));
  const std::uint64_t shipped = settle_acked(ship, "t");
  EXPECT_GT(shipped, 0u);

  ship.stop();
  primary.stop();
  standby.stop();
  primary_loop.join();
  standby_loop.join();

  net::Tenant* p = primary.tenants().find("t");
  net::Tenant* s = standby.tenants().find("t");
  ASSERT_NE(p, nullptr);
  ASSERT_NE(s, nullptr);
  // The re-seed cleared the divergence and the stores re-converged.
  EXPECT_FALSE(s->diverged());
  EXPECT_EQ(s->replica_lsn(), p->journal_lsn());
  EXPECT_EQ(store_digest(s->controller()), store_digest(p->controller()));
}

// -------------------------------------------- promote + failover gap

// The full failover story against an in-process uninterrupted twin:
// every client operation is mirrored to a twin server that never
// fails; the primary dies with acked-but-unshipped operations; the
// promoted standby plus the client's re-drive must land on a store
// bit-identical to the twin's, and a duplicate resend of an applied id
// must be answered from the dedup cache, not applied again.
TEST_F(ReplTest, PromoteAndFailoverDifferential) {
  const std::string pdir = temp_dir("fail_p");
  const std::string sdir = temp_dir("fail_s");
  const std::string tdir = temp_dir("fail_twin");

  net::ServerOptions sopts;
  sopts.tenants.data_dir = sdir;
  sopts.tenants.standby = true;
  net::Server standby(sopts);
  std::thread standby_loop([&] { standby.run(); });

  net::ServerOptions popts;
  popts.tenants.data_dir = pdir;
  std::optional<net::Server> primary;
  primary.emplace(popts);
  std::thread primary_loop([&] { primary->run(); });

  net::ServerOptions topts;
  topts.tenants.data_dir = tdir;
  net::Server twin(topts);
  std::thread twin_loop([&] { twin.run(); });

  ShipperOptions shop;
  shop.port = standby.port();
  shop.data_dir = pdir;
  shop.poll_interval_ms = 1;
  Shipper ship(shop);
  ship.start();

  net::RetryPolicy policy;
  policy.failover_after_unavailable = 2;
  net::RetryingClient rc(
      {{"127.0.0.1", primary->port()}, {"127.0.0.1", standby.port()}}, "t",
      "cli", policy);
  net::RetryingClient twin_rc("127.0.0.1", twin.port(), "t", "cli");

  struct SentOp {
    std::uint64_t id = 0;
    Task task;
    net::NetResponse resp;
  };
  std::deque<SentOp> window;
  std::uint64_t redriven = 0;
  std::uint64_t redrive_mismatches = 0;
  rc.set_on_reconnect([&] {
    // Acked ids above the new server's watermark died with the
    // primary: re-apply them in original order under original ids —
    // determinism makes each answer bit-equal to the lost primary's.
    const std::uint64_t watermark = rc.highest_applied();
    for (const SentOp& op : window) {
      if (op.id <= watermark) continue;
      net::NetRequest req;
      req.hdr.op = static_cast<std::uint8_t>(net::NetOp::Admit);
      req.hdr.request_id = op.id;
      req.task = op.task;
      const net::NetResponse got = rc.call(std::move(req));
      ++redriven;
      if (got.hdr.status != op.resp.hdr.status || got.id != op.resp.id ||
          got.rung != op.resp.rung) {
        ++redrive_mismatches;
      }
    }
  });

  // Mirror every operation to the twin exactly once (re-drives and
  // deliberate resends are recovery traffic, not new operations).
  const auto drive = [&](const Task& t) {
    const net::NetResponse r = rc.admit(t);
    window.push_back({rc.last_request_id(), t, r});
    const net::NetResponse tw = twin_rc.admit(t);
    EXPECT_EQ(status_of(r), status_of(tw));
    EXPECT_EQ(r.id, tw.id);
  };

  // Phase 1: replicated prefix.
  for (int i = 0; i < 20; ++i) drive(tk(1, 8u << (i % 3), 8u << (i % 3)));
  const std::uint64_t prefix = settle_acked(ship, "t");
  EXPECT_GT(prefix, 0u);

  // Phase 2: the shipper dies first, then the primary acks a gap the
  // standby never sees — the async-ack durability hole.
  ship.stop();
  for (int i = 0; i < 5; ++i) drive(tk(1, 16, 16));

  // Phase 3: primary dies hard; standby is promoted over the wire.
  primary->stop();
  primary_loop.join();
  primary.reset();  // close the listen socket so failover must rotate
  {
    net::Client admin = net::Client::connect("127.0.0.1", standby.port());
    (void)admin.call([] {
      net::NetRequest h;
      h.hdr.op = static_cast<std::uint8_t>(net::NetOp::Hello);
      h.tenant = "t";
      return h;
    }());
    net::NetRequest prom;
    prom.hdr.op = static_cast<std::uint8_t>(net::NetOp::Promote);
    const net::NetResponse r = admin.call(std::move(prom));
    ASSERT_EQ(status_of(r), net::NetStatus::Ok);
    EXPECT_GE(r.promoted, 1u);
  }

  // Phase 4: the next call walks the endpoint list, re-drives the gap
  // through the hook, then completes — and the trace continues.
  for (int i = 0; i < 10; ++i) drive(tk(1, 8u << (i % 3), 8u << (i % 3)));
  EXPECT_GE(rc.failovers(), 1u);
  EXPECT_EQ(redriven, 5u);
  EXPECT_EQ(redrive_mismatches, 0u);

  // A duplicate resend of an applied id is answered from the dedup
  // cache, bit-equal, without a second apply.
  {
    const SentOp& last = window.back();
    net::NetRequest req;
    req.hdr.op = static_cast<std::uint8_t>(net::NetOp::Admit);
    req.hdr.request_id = last.id;
    req.task = last.task;
    const net::NetResponse again = rc.call(std::move(req));
    EXPECT_EQ(again.hdr.status, last.resp.hdr.status);
    EXPECT_EQ(again.id, last.resp.id);
    EXPECT_EQ(again.rung, last.resp.rung);
  }

  twin.stop();
  standby.stop();
  twin_loop.join();
  standby_loop.join();

  // Differential: the promoted standby's store is bit-identical to the
  // uninterrupted twin's — nothing lost, nothing applied twice.
  net::Tenant* s = standby.tenants().find("t");
  net::Tenant* t = twin.tenants().find("t");
  ASSERT_NE(s, nullptr);
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(s->standby());  // promoted
  EXPECT_EQ(store_digest(s->controller()), store_digest(t->controller()));
  EXPECT_EQ(s->highest_applied("cli"), t->highest_applied("cli"));
  EXPECT_TRUE(s->controller().verify_consistency());
}

}  // namespace
}  // namespace edfkit::repl
