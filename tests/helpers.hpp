/// \file helpers.hpp
/// Shared helpers for the edfkit test suite.
#pragma once

#include <string>
#include <vector>

#include "gen/scenario.hpp"
#include "model/task_set.hpp"
#include "util/random.hpp"

namespace edfkit::testing {

/// Terse task constructor for hand-written fixtures.
inline Task tk(Time c, Time d, Time t) {
  Task x;
  x.wcet = c;
  x.deadline = d;
  x.period = t;
  return x;
}

inline TaskSet set_of(std::initializer_list<Task> ts) {
  return TaskSet(std::vector<Task>(ts));
}

/// A deterministic family of small random task sets whose hyperperiods
/// are simulable (periods from a divisor-rich pool) — the workhorse of
/// the property suites.
inline std::vector<TaskSet> small_random_sets(int count, double utilization,
                                              std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<TaskSet> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(draw_small_set(rng, utilization));
  }
  return out;
}

/// Mid-size random sets at paper-like parameters (not simulable, but all
/// analytical tests handle them).
inline std::vector<TaskSet> paper_random_sets(int count, double utilization,
                                              std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<TaskSet> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(draw_fig8_set(rng, utilization));
  }
  return out;
}

}  // namespace edfkit::testing
