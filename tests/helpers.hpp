/// \file helpers.hpp
/// Shared helpers for the edfkit test suite.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "gen/scenario.hpp"
#include "model/task_set.hpp"
#include "util/random.hpp"

namespace edfkit::testing {

/// Terse task constructor for hand-written fixtures.
inline Task tk(Time c, Time d, Time t) {
  Task x;
  x.wcet = c;
  x.deadline = d;
  x.period = t;
  return x;
}

inline TaskSet set_of(std::initializer_list<Task> ts) {
  return TaskSet(std::vector<Task>(ts));
}

/// A deterministic family of small random task sets whose hyperperiods
/// are simulable (periods from a divisor-rich pool) — the workhorse of
/// the property suites.
inline std::vector<TaskSet> small_random_sets(int count, double utilization,
                                              std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<TaskSet> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(draw_small_set(rng, utilization));
  }
  return out;
}

/// Mid-size random sets at paper-like parameters (not simulable, but all
/// analytical tests handle them).
inline std::vector<TaskSet> paper_random_sets(int count, double utilization,
                                              std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<TaskSet> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(draw_fig8_set(rng, utilization));
  }
  return out;
}

/// Iteration multiplier for the differential fuzz suites. The nightly
/// long-fuzz CI workflow sets EDFKIT_FUZZ_MULT=20 to run the same
/// fuzzers at 20x depth; interactive runs default to 1.
inline std::uint64_t fuzz_multiplier() {
  const char* env = std::getenv("EDFKIT_FUZZ_MULT");
  if (env == nullptr || *env == '\0') return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v >= 1 ? static_cast<std::uint64_t>(v) : 1;
}

/// Drop a minimized-repro artifact (seed + config + failure context)
/// into $EDFKIT_FUZZ_ARTIFACT_DIR, when set — the nightly workflow
/// uploads that directory on failure. No-op otherwise.
inline void write_fuzz_artifact(const std::string& name,
                                const std::string& content) {
  const char* dir = std::getenv("EDFKIT_FUZZ_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(std::string(dir) + "/" + name);
  out << content;
}

}  // namespace edfkit::testing
