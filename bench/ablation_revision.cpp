/// \file ablation_revision.cpp
/// Ablation of the all-approximated test's revision order. The paper's
/// pseudocode revises the FIFO-oldest approximation
/// (getAndRemoveFirstTask, Fig. 7); this bench compares FIFO, LIFO and a
/// greedy max-overestimation policy on high-utilization workloads.
///
/// Verdicts are identical under every policy (the test stays exact, as
/// the test suite asserts); only the effort differs.
#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "core/all_approx.hpp"
#include "gen/scenario.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 150);
  bench::banner("Ablation: all-approx revision policy (FIFO/LIFO/max-error)",
                "design choice in §4.2 (getAndRemoveFirstTask)", setup);

  struct Policy {
    const char* name;
    RevisionPolicy policy;
  };
  constexpr std::array<Policy, 3> kPolicies = {
      Policy{"fifo", RevisionPolicy::Fifo},
      Policy{"lifo", RevisionPolicy::Lifo},
      Policy{"max-error", RevisionPolicy::MaxError}};

  setup.csv.header({"utilization", "policy", "avg_effort", "max_effort",
                    "avg_revisions"});
  std::printf("%5s | %-9s %11s %11s %13s\n", "U(%)", "policy", "avg effort",
              "max effort", "avg revisions");
  for (int u_pct = 94; u_pct <= 99; ++u_pct) {
    for (const Policy& p : kPolicies) {
      Rng rng(setup.seed + static_cast<std::uint64_t>(u_pct));
      OnlineStats effort;
      OnlineStats revisions;
      for (std::int64_t i = 0; i < setup.sets; ++i) {
        const TaskSet ts = draw_fig8_set(rng, u_pct / 100.0);
        AllApproxOptions opts;
        opts.revision = p.policy;
        const FeasibilityResult r = all_approx_test(ts, opts);
        effort.add(static_cast<double>(r.effort()));
        revisions.add(static_cast<double>(r.revisions));
      }
      std::printf("%5d | %-9s %11.0f %11.0f %13.0f\n", u_pct, p.name,
                  effort.mean(), effort.max(), revisions.mean());
      setup.csv.row_of(u_pct, p.name, effort.mean(), effort.max(),
                       revisions.mean());
    }
  }
  std::printf("\nexpected: all policies exact; effort differences show how "
              "much the revision order matters.\n");
  return 0;
}
