/// \file perf_suite.cpp
/// The repo's performance regression suite: fixed-seed sweeps through
/// the demand-kernel hot paths, old-equivalent vs new, emitting a
/// machine-readable BENCH_perf.json that CI gates on.
///
///   ./perf_suite [--quick] [--events N] [--epsilon 0.25] [--seed N]
///                [--sets reps] [--json BENCH_perf.json]
///                [--baseline path/to/committed.json] [--tolerance 0.2]
///
/// --quick only reduces timing repetitions (best-of-1) and query-cell
/// iterations; the sweep grid and trace lengths stay identical so a
/// quick run's headline is directly comparable to the committed
/// full-run baseline (the CI gate depends on this).
///
/// Two sections:
///
///  * admission — churn traces (gen/scenario Fixed family) with
///    n in {10, 100, 1000} resident tasks and pool utilization
///    U in {0.7, 0.9, 0.99}, replayed through two AdmissionControllers
///    that differ only in `use_slack_index`: OFF is the pre-index
///    behavior (every scan walks the whole checkpoint array — the
///    pre-refactor admission path), ON fast-forwards buckets proven
///    slack by earlier scans. Decisions are asserted identical
///    event-for-event before timing is trusted. Both run `skip_exact`
///    (rung <= 2) so the measurement isolates the approximate demand
///    kernel this suite guards; one full-ladder cell is replayed as an
///    additional agreement check where verdict equality is guaranteed
///    by exactness. The headline cell is n=1000, U=0.99 (target: >= 3x
///    decisions/sec).
///
///  * query — per-query latency of Query::run for the legacy
///    Workload-copy entry vs the zero-copy WorkloadView entry, on the
///    same backend (chakraborty), isolating the per-query task-set copy.
///
/// JSON schema (schema = 1):
///   { "bench": "perf_suite", "schema": 1, "seed": N, "quick": bool,
///     "epsilon": e,
///     "admission": [ { "n": N, "u": U, "events": N, "ladder": bool,
///                      "old_dps": f, "new_dps": f, "speedup": f,
///                      "agreement": true } ... ],
///     "query": [ { "n": N, "backend": "chakraborty",
///                  "old_ns_per_query": f, "view_ns_per_query": f,
///                  "speedup": f } ... ],
///     "headline": { "n": 1000, "u": 0.99, "old_dps": f, "new_dps": f,
///                   "speedup": f } }
///
/// With --baseline, exits 4 when the headline speedup regresses by more
/// than --tolerance (default 0.2 = 20%) against the committed baseline —
/// the speedup ratio is machine-independent, so the gate is meaningful
/// on shared CI runners. Exits 3 on any decision disagreement.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "admission/controller.hpp"
#include "admission/replay.hpp"
#include "bench_common.hpp"
#include "gen/taskset_gen.hpp"
#include "query/query.hpp"

namespace {

using namespace edfkit;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Replays a trace through one controller, tracking key -> TaskId so the
/// two compared paths can be stepped in lockstep.
struct Shadow {
  AdmissionController ctl;
  std::vector<std::pair<std::uint64_t, TaskId>> live;

  explicit Shadow(const AdmissionOptions& o) : ctl(o) {}

  /// Returns the admit decision for arrivals, true for departures.
  bool step(const TraceEvent& ev) {
    if (ev.op == TraceOp::Arrive) {
      const AdmissionDecision d = ctl.try_admit(ev.task);
      if (d.admitted) live.emplace_back(ev.key, d.id);
      return d.admitted;
    }
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->first == ev.key) {
        ctl.remove(it->second);
        live.erase(it);
        break;
      }
    }
    return true;
  }
};

struct AdmissionRow {
  std::size_t n = 0;
  double u = 0.0;
  std::size_t events = 0;
  bool ladder = false;
  double old_dps = 0.0;
  double new_dps = 0.0;
  double speedup = 0.0;
};

/// One sweep cell: agreement first, then best-of-reps timing per path.
AdmissionRow run_admission_cell(std::size_t n, double u, std::size_t events,
                                double epsilon, bool ladder,
                                std::uint64_t seed, std::int64_t reps) {
  ChurnConfig churn;
  churn.warmup_arrivals = n;
  churn.events = events;
  churn.pool_utilization = u;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = static_cast<int>(n);
  Rng rng(seed);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);

  AdmissionOptions base;
  base.epsilon = epsilon;
  base.skip_exact = !ladder;
  AdmissionOptions old_opts = base;
  old_opts.use_slack_index = false;
  AdmissionOptions new_opts = base;
  new_opts.use_slack_index = true;

  // Decision-for-decision agreement (untimed).
  {
    Shadow oldp(old_opts);
    Shadow newp(new_opts);
    std::uint64_t mismatches = 0;
    for (const TraceEvent& ev : trace) {
      const bool a = oldp.step(ev);
      const bool b = newp.step(ev);
      if (a != b) ++mismatches;
    }
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "BUG: %llu decision mismatches (n=%zu u=%.2f%s)\n",
                   static_cast<unsigned long long>(mismatches), n, u,
                   ladder ? " ladder" : "");
      std::exit(3);
    }
  }

  const auto timed = [&](const AdmissionOptions& opts) {
    double best = 1e300;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      AdmissionController ctl(opts);
      const auto t0 = std::chrono::steady_clock::now();
      (void)replay_trace(trace, ctl);
      best = std::min(best, seconds_since(t0));
    }
    return best;
  };

  AdmissionRow row;
  row.n = n;
  row.u = u;
  row.events = trace.size();
  row.ladder = ladder;
  const double total = static_cast<double>(trace.size());
  row.old_dps = total / timed(old_opts);
  row.new_dps = total / timed(new_opts);
  row.speedup = row.new_dps / row.old_dps;
  return row;
}

struct QueryRow {
  std::size_t n = 0;
  double old_ns = 0.0;
  double view_ns = 0.0;
  double speedup = 0.0;
};

QueryRow run_query_cell(std::size_t n, double epsilon, std::uint64_t seed,
                        std::int64_t reps, bool quick) {
  GeneratorConfig gen;
  gen.tasks = static_cast<int>(n);
  gen.utilization = 0.9;
  Rng rng(seed);
  const TaskSet ts = generate_task_set(rng, gen);

  ChakrabortyParams params;
  params.epsilon = epsilon;
  const Query q =
      Query::single(TestKind::Chakraborty, params).with_certificates(false);

  const std::size_t iters =
      std::max<std::size_t>(50, (quick ? 20000 : 100000) / n);
  double old_best = 1e300;
  double view_best = 1e300;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < iters; ++it) {
        // The legacy entry: every call copies the set into a Workload.
        (void)q.run(Workload::periodic(ts));
      }
      old_best = std::min(old_best, seconds_since(t0));
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < iters; ++it) {
        (void)q.run(WorkloadView(ts));  // zero-copy
      }
      view_best = std::min(view_best, seconds_since(t0));
    }
  }
  QueryRow row;
  row.n = n;
  row.old_ns = old_best * 1e9 / static_cast<double>(iters);
  row.view_ns = view_best * 1e9 / static_cast<double>(iters);
  row.speedup = row.old_ns / row.view_ns;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const bool quick = flags.get_bool("quick", false);
    bench::BenchSetup setup(flags, /*default_sets=*/quick ? 1 : 3);
    bench::banner("perf suite: demand-kernel hot paths, old vs new",
                  "regression harness (no paper figure); churn of §5 "
                  "workloads",
                  setup);

    const auto events =
        static_cast<std::size_t>(flags.get_int("events", 2000));
    const double epsilon = flags.get_double("epsilon", 0.25);
    const std::string json_path = flags.get("json", "BENCH_perf.json");
    const double tolerance = flags.get_double("tolerance", 0.2);

    setup.csv.header({"section", "n", "u", "events", "old", "new",
                      "speedup"});
    std::printf("%-10s %6s %6s %8s %14s %14s %9s\n", "section", "n", "u",
                "events", "old", "new", "speedup");

    std::vector<AdmissionRow> admission;
    for (const std::size_t n :
         {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
      for (const double u : {0.7, 0.9, 0.99}) {
        const AdmissionRow row = run_admission_cell(
            n, u, events, epsilon, /*ladder=*/false,
            setup.seed + n * 1000 + static_cast<std::uint64_t>(u * 100),
            setup.sets);
        admission.push_back(row);
        std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx\n",
                    "admission", n, u, row.events, row.old_dps, row.new_dps,
                    row.speedup);
        setup.csv.row_of("admission", static_cast<long long>(n), u,
                         static_cast<long long>(row.events), row.old_dps,
                         row.new_dps, row.speedup);
      }
    }
    // One full-ladder cell: decisions are exact-backed on both paths, so
    // agreement is guaranteed by construction — a sanity anchor for the
    // rung-<=2 rows above.
    {
      const AdmissionRow row =
          run_admission_cell(100, 0.99, events, epsilon, /*ladder=*/true,
                             setup.seed + 777, setup.sets);
      admission.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx (ladder)\n",
                  "admission", row.n, row.u, row.events, row.old_dps,
                  row.new_dps, row.speedup);
      setup.csv.row_of("admission-ladder", 100LL, 0.99,
                       static_cast<long long>(row.events), row.old_dps,
                       row.new_dps, row.speedup);
    }

    std::vector<QueryRow> queries;
    for (const std::size_t n :
         {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
      const QueryRow row =
          run_query_cell(n, epsilon, setup.seed + 13 * n, setup.sets, quick);
      queries.push_back(row);
      std::printf("%-10s %6zu %6s %8zu %12.0fns %12.0fns %8.2fx\n", "query",
                  n, "-", std::size_t{0}, row.old_ns, row.view_ns,
                  row.speedup);
      setup.csv.row_of("query", static_cast<long long>(n), 0.0, 0LL,
                       row.old_ns, row.view_ns, row.speedup);
    }

    // Headline: the saturated large-set admission cell.
    const AdmissionRow* headline = nullptr;
    for (const AdmissionRow& row : admission) {
      if (row.n == 1000 && row.u == 0.99 && !row.ladder) headline = &row;
    }

    bench::JsonEmitter json;
    json.kv("bench", "perf_suite")
        .kv("schema", 1LL)
        .kv("seed", static_cast<long long>(setup.seed))
        .kv("quick", quick)
        .kv("epsilon", epsilon);
    json.begin_array("admission");
    for (const AdmissionRow& row : admission) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("events", static_cast<long long>(row.events))
          .kv("ladder", row.ladder)
          .kv("old_dps", row.old_dps)
          .kv("new_dps", row.new_dps)
          .kv("speedup", row.speedup)
          .kv("agreement", true)
          .end();
    }
    json.end();
    json.begin_array("query");
    for (const QueryRow& row : queries) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("backend", "chakraborty")
          .kv("old_ns_per_query", row.old_ns)
          .kv("view_ns_per_query", row.view_ns)
          .kv("speedup", row.speedup)
          .end();
    }
    json.end();
    json.begin_object("headline")
        .kv("n", 1000LL)
        .kv("u", 0.99)
        .kv("old_dps", headline != nullptr ? headline->old_dps : 0.0)
        .kv("new_dps", headline != nullptr ? headline->new_dps : 0.0)
        .kv("speedup", headline != nullptr ? headline->speedup : 0.0)
        .end();
    if (!json.write(json_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s (headline speedup: %.2fx at n=1000, U=0.99)\n",
                json_path.c_str(),
                headline != nullptr ? headline->speedup : 0.0);

    if (flags.has("baseline")) {
      const std::string base_path = flags.get("baseline", "");
      std::ifstream f(base_path);
      if (!f) {
        std::fprintf(stderr, "error: cannot read baseline %s\n",
                     base_path.c_str());
        return 2;
      }
      std::stringstream buf;
      buf << f.rdbuf();
      const double base_speedup =
          bench::json_number_after(buf.str(), "headline", "speedup", -1.0);
      if (base_speedup <= 0.0) {
        std::fprintf(stderr, "error: baseline %s has no headline.speedup\n",
                     base_path.c_str());
        return 2;
      }
      const double now =
          headline != nullptr ? headline->speedup : 0.0;
      const double floor = base_speedup * (1.0 - tolerance);
      std::printf("baseline gate: %.2fx now vs %.2fx committed "
                  "(floor %.2fx)\n",
                  now, base_speedup, floor);
      if (now < floor) {
        std::fprintf(stderr,
                     "REGRESSION: headline speedup %.2fx fell below "
                     "%.2fx (baseline %.2fx - %.0f%%)\n",
                     now, floor, base_speedup, tolerance * 100.0);
        return 4;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
