/// \file perf_suite.cpp
/// The repo's performance regression suite: fixed-seed sweeps through
/// the demand-kernel hot paths, old-equivalent vs new, emitting a
/// machine-readable BENCH_perf.json that CI gates on.
///
///   ./perf_suite [--quick] [--events N] [--epsilon 0.25] [--seed N]
///                [--sets reps] [--json BENCH_perf.json]
///                [--baseline path/to/committed.json] [--tolerance 0.2]
///                [--gate-batch X] [--gate-small-n X]
///                [--gate-obs-overhead X] [--obs-metrics-out FILE]
///                [--obs-trace-out FILE] [--gate-fault-overhead X]
///                [--gate-repl-overhead X]
///
/// --quick only reduces timing repetitions (best-of-1) and query/read
/// cell iterations; the sweep grid and trace lengths stay identical so
/// a quick run's headline is directly comparable to the committed
/// full-run baseline (the CI gate depends on this).
///
/// Sections (schema = 8):
///
///  * admission — churn traces (gen/scenario Fixed family) with
///    n in {10, 100, 1000} resident tasks and pool utilization
///    U in {0.7, 0.9, 0.99}, replayed through two AdmissionControllers
///    that differ only in `use_slack_index`: OFF is the pre-index
///    behavior (every scan walks the whole checkpoint array), ON
///    fast-forwards buckets proven slack by earlier scans (engaging
///    adaptively by resident count, so small-n cells no longer pay
///    index maintenance they cannot amortize). Decisions are asserted
///    identical event-for-event before timing is trusted. Both run
///    `skip_exact` (rung <= 2); one full-ladder cell is replayed as an
///    additional agreement anchor. Headline: n=1000, U=0.99.
///
///  * batch — group-arrival traces (8-task groups, admission-feedback
///    churn: departures withdraw resident groups) replayed through
///    admit_group (at most one certified scan per group) vs two
///    per-task all-or-nothing baselines: the *full loop* (try_admit
///    every member, roll back on any failure — the client that reports
///    which member broke the group; `loop_dps`, the headline
///    comparison) and the *short-circuit loop* (abort on first reject;
///    `shortcircuit_dps`). Decisions are asserted identical
///    event-for-event across all three (EDF feasibility is
///    subset-monotone, so union-feasible == every-member-admitted) and
///    only the group decisions are timed. The gate wants >= 2x
///    batch_dps/loop_dps at n=1000, U=0.99.
///
///  * removal — a drain of half the resident set through the
///    tombstoned store (departures mark checkpoints dead, O(level))
///    vs eager compaction (the pre-tombstone per-removal segment
///    erase), on a single-segment store where the memmove cost is
///    maximal. Tombstoned ns/removal should stay flat as n grows;
///    eager scales with the store size.
///
///  * read — concurrent-read throughput of AdmissionEngine::stats():
///    `read_qps` polls the epoch-versioned wait-free headers while a
///    writer churns; `locked_qps` is the mutex path (stats_locked),
///    which convoys behind admissions.
///
///  * query — per-query latency of Query::run for the legacy
///    Workload-copy entry vs the zero-copy WorkloadView entry.
///
///  * persist — durability costs (admission/snapshot.hpp): full
///    snapshot save (serialize + fsync + atomic rename) and load
///    (parse + CRC + store rebuild) of an n-resident controller, and
///    journal ns/append for admit records (FsyncPolicy::None — the
///    page-cache path; fsync-per-record is a device property, not a
///    code property). Reported, not gated: these are off the decision
///    path (the checkpoint thread and the WAL run beside it).
///
///  * obs — the compiled-in-but-cheap contract, measured: the headline
///    admission cell (same trace and options as the n=1000/U=0.99 row)
///    replayed with src/obs/ fully attached (metrics registry + flight
///    recorder) vs nothing attached (the ObsConfig::disabled() state —
///    every probe collapses to one branch). `ratio` is best-of/best-of
///    over interleaved alternating replays (noise-robust minima,
///    re-measured when marginal); CI gates it with
///    --gate-obs-overhead (0.97 = at most 3% overhead).
///    --obs-metrics-out / --obs-trace-out dump the instrumented run's
///    registry (Prometheus text) and flight recorder (JSON) as CI
///    artifacts.
///
///  * fault — the zero-overhead-when-off contract of the failpoint
///    registry (src/fault/), measured on the journaled headline churn:
///    the n=1000/U=0.99 trace replayed through a controller with a WAL
///    attached (every decision appends a record, crossing the persist
///    failpoints), all kPersistSites disarmed vs armed with a schedule
///    that never fires (after, n=1e15 — the armed-check upper bound:
///    every hit runs the full consume() path, no fault is ever
///    injected). `ratio` is best-of/best-of over interleaved
///    alternating replays, the run_obs_cell estimator; CI gates it
///    with --gate-fault-overhead (0.99 = at most 1% overhead, tighter
///    than obs because the disarmed check is one relaxed load).
///
///  * net — the cost of serving decisions over the wire (src/net/): the
///    same churn replayed through a loopback net::Server over one
///    synchronous connection vs straight into the controller.
///    `wire_overhead_ns` is the framing + epoll + syscall cost added
///    per decision. Reported, not gated (the net-load CI job gates
///    end-to-end latency under concurrent load).
///
///  * repl — the primary's cost of a live hot standby (src/repl/): the
///    journaled headline churn served over loopback with a shipper
///    tailing the WAL into a follower server + periodic digest pushes,
///    vs the identical server with nothing attached. `overhead_x` is
///    attached/detached wall time (best-of/best-of, interleaved); CI
///    gates it with --gate-repl-overhead (1.05 = at most 5% added —
///    the shipper reads page cache out-of-thread, so the serving path
///    should pay ~nothing).
///
///  * multi — global-admission ladder throughput: Fixed-family churn
///    (100-task pools at U=0.99 each) replayed through one
///    AdmissionController with AdmissionOptions::platform = {m} for
///    m in {2, 4, 8}, after a 100*m-arrival warmup that saturates the
///    platform so timed decisions exercise the full gfb -> window ->
///    rta -> sim cascade near capacity. `ladder_dps` is whole-trace
///    decisions/sec (best of --sets reps); `admit_rate` (untimed pass)
///    is the saturation evidence — well under 1.0 means the ladder is
///    actually refusing work at the boundary, not rubber-stamping.
///    Reported, not gated (absolute rates; no old-path twin exists for
///    a ratio).
///
/// JSON schema (schema = 8; v7 had no multi section; v6 had no repl section; v5 had no fault
/// section; v4 had no net section; v3 had no obs section and no
/// known_regressions; v2 had no persist section; v1 had no
/// batch/removal/read sections). `known_regressions` documents the
/// accepted sub-1x admission cells (n=100 slack-index maintenance) with
/// the scan-internals counters that explain them — the small-n gate
/// tolerates those cells; a *new* regression shows up as a cell outside
/// this list.
///   { "bench": "perf_suite", "schema": 8, "seed": N, "quick": bool,
///     "epsilon": e,
///     "admission": [ { "n": N, "u": U, "events": N, "ladder": bool,
///                      "old_dps": f, "new_dps": f, "speedup": f,
///                      "agreement": true } ... ],
///     "batch":     [ { "n": N, "u": U, "group": G, "events": N,
///                      "loop_dps": f, "shortcircuit_dps": f,
///                      "batch_dps": f, "speedup": f,
///                      "speedup_vs_shortcircuit": f,
///                      "agreement": true } ... ],
///     "removal":   [ { "n": N, "checkpoints": N, "eager_ns": f,
///                      "tombstone_ns": f, "speedup": f } ... ],
///     "read":      [ { "readers": R, "locked_qps": f, "read_qps": f,
///                      "speedup": f } ],
///     "query":     [ { "n": N, "backend": "chakraborty",
///                      "old_ns_per_query": f, "view_ns_per_query": f,
///                      "speedup": f } ... ],
///     "persist":   [ { "n": N, "snapshot_bytes": N, "save_ns": f,
///                      "load_ns": f, "journal_append_ns": f } ... ],
///     "obs":       [ { "n": N, "u": U, "events": N, "plain_dps": f,
///                      "instr_dps": f, "ratio": f } ],
///     "fault":     [ { "n": N, "u": U, "events": N, "off_dps": f,
///                      "armed_dps": f, "ratio": f } ],
///     "net":       [ { "n": N, "u": U, "events": N, "local_dps": f,
///                      "net_dps": f, "wire_overhead_ns": f } ... ],
///     "repl":      [ { "n": N, "u": U, "events": N, "plain_dps": f,
///                      "repl_dps": f, "overhead_x": f } ],
///     "multi":     [ { "m": M, "n": N, "u": U, "events": N,
///                      "ladder_dps": f, "admit_rate": f } ... ],
///     "known_regressions": [ { "section": "admission", "n": N, "u": U,
///                      "speedup": f, "note": "...",
///                      "index_off": { scan-internals counters },
///                      "index_on":  { scan-internals counters } } ... ],
///     "headline": { "n": 1000, "u": 0.99, "old_dps": f, "new_dps": f,
///                   "speedup": f },
///     "batch_headline": { "n": 1000, "u": 0.99, "group": 8,
///                         "speedup": f } }
///
/// Exit codes: 3 = decision disagreement; with --baseline, 4 = headline
/// speedup regressed by more than --tolerance (default 0.2) vs the
/// committed BENCH_perf.json; 5 = batch headline speedup below
/// --gate-batch; 6 = some n=10 admission cell below --gate-small-n;
/// 7 = instrumented/plain decision rate below --gate-obs-overhead;
/// 8 = armed/disarmed decision rate below --gate-fault-overhead;
/// 9 = standby-attached/detached serving time above --gate-repl-overhead.
#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "admission/engine.hpp"
#include "admission/replay.hpp"
#include "admission/snapshot.hpp"
#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "gen/taskset_gen.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/obs.hpp"
#include "query/query.hpp"
#include "repl/shipper.hpp"

namespace {

using namespace edfkit;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// How a shadow handles group arrivals (all decide all-or-nothing and
/// agree event-for-event — EDF feasibility is subset-monotone, so
/// "union feasible" == "every member individually admitted"):
///   Batch      admit_group — one certified scan for the group.
///   FullLoop   try_admit every member, roll back if any failed — the
///              per-task baseline with per-member verdicts (what an
///              all-or-nothing client runs when it must report *which*
///              member broke the group).
///   ShortLoop  try_admit members, abort on the first reject — the
///              thriftiest per-task client (no failure attribution).
enum class GroupMode { Batch, FullLoop, ShortLoop };

/// Replays a trace through one controller, tracking key -> ids so the
/// compared paths can be stepped in lockstep.
struct Shadow {
  AdmissionController ctl;
  GroupMode mode;
  std::vector<std::pair<std::uint64_t, std::vector<TaskId>>> live;

  explicit Shadow(const AdmissionOptions& o,
                  GroupMode m = GroupMode::Batch)
      : ctl(o), mode(m) {}

  /// Returns the admit decision for arrivals, true for departures.
  bool step(const TraceEvent& ev) {
    if (ev.op == TraceOp::Depart) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].first != ev.key) continue;
        (void)ctl.remove_group(live[i].second);
        live[i] = live.back();
        live.pop_back();
        break;
      }
      return true;
    }
    if (ev.op == TraceOp::Arrive) {
      const AdmissionDecision d = ctl.try_admit(ev.task);
      if (d.admitted) live.emplace_back(ev.key, std::vector<TaskId>{d.id});
      return d.admitted;
    }
    if (mode == GroupMode::Batch) {
      GroupDecision d = ctl.admit_group(ev.group);
      const bool ok = d.admitted;
      if (ok) live.emplace_back(ev.key, std::move(d.ids));
      return ok;
    }
    // Per-task all-or-nothing baselines.
    std::vector<TaskId> ids;
    ids.reserve(ev.group.size());
    bool all = true;
    for (const Task& t : ev.group) {
      const AdmissionDecision d = ctl.try_admit(t);
      if (!d.admitted) {
        all = false;
        if (mode == GroupMode::ShortLoop) break;
        continue;  // FullLoop: keep deciding the remaining members
      }
      ids.push_back(d.id);
    }
    if (!all) {
      for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
        (void)ctl.remove(*it);
      }
      return false;
    }
    live.emplace_back(ev.key, std::move(ids));
    return true;
  }
};

/// Decision-for-decision agreement between two shadow configurations
/// (untimed); exits 3 on any mismatch.
void assert_agreement(const std::vector<TraceEvent>& trace,
                      Shadow& a, Shadow& b, const char* what) {
  std::uint64_t mismatches = 0;
  for (const TraceEvent& ev : trace) {
    if (a.step(ev) != b.step(ev)) ++mismatches;
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "BUG: %llu decision mismatches (%s)\n",
                 static_cast<unsigned long long>(mismatches), what);
    std::exit(3);
  }
}

template <typename MakeShadow>
double timed_replay(const std::vector<TraceEvent>& trace,
                    MakeShadow make, std::int64_t reps) {
  double best = 1e300;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    auto shadow = make();
    const auto t0 = std::chrono::steady_clock::now();
    for (const TraceEvent& ev : trace) (void)shadow.step(ev);
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

/// Time the *group decisions* only: warmup singles and departures are
/// replayed (the store must evolve identically) but excluded from the
/// measurement — they cost the same on both compared paths and would
/// only dilute the group-decision-rate ratio the cell exists to
/// measure. Returns best-of-reps seconds per full pass.
template <typename MakeShadow>
double timed_replay_groups(const std::vector<TraceEvent>& trace,
                           MakeShadow make, std::int64_t reps) {
  double best = 1e300;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    auto shadow = make();
    double spent = 0.0;
    for (const TraceEvent& ev : trace) {
      if (ev.op != TraceOp::ArriveGroup) {
        (void)shadow.step(ev);
        continue;
      }
      const auto t0 = std::chrono::steady_clock::now();
      (void)shadow.step(ev);
      spent += seconds_since(t0);
    }
    best = std::min(best, spent);
  }
  return best;
}

std::vector<TraceEvent> make_trace(std::size_t n, double u,
                                   std::size_t events, std::uint64_t seed,
                                   double group_probability,
                                   std::size_t group_size) {
  ChurnConfig churn;
  churn.warmup_arrivals = n;
  churn.events = events;
  churn.pool_utilization = u;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = static_cast<int>(n);
  churn.group_probability = group_probability;
  churn.group_size = group_size;
  Rng rng(seed);
  return generate_churn_trace(rng, churn);
}

// ------------------------------------------------------------ admission

struct AdmissionRow {
  std::size_t n = 0;
  double u = 0.0;
  std::size_t events = 0;
  bool ladder = false;
  double old_dps = 0.0;
  double new_dps = 0.0;
  double speedup = 0.0;
};

/// One sweep cell: agreement first, then best-of-reps timing per path.
AdmissionRow run_admission_cell(std::size_t n, double u, std::size_t events,
                                double epsilon, bool ladder,
                                std::uint64_t seed, std::int64_t reps) {
  const std::vector<TraceEvent> trace =
      make_trace(n, u, events, seed, 0.0, 1);

  AdmissionOptions base;
  base.epsilon = epsilon;
  base.skip_exact = !ladder;
  AdmissionOptions old_opts = base;
  old_opts.use_slack_index = false;
  AdmissionOptions new_opts = base;
  new_opts.use_slack_index = true;

  {
    Shadow oldp(old_opts);
    Shadow newp(new_opts);
    assert_agreement(trace, oldp, newp, "index on/off");
  }

  AdmissionRow row;
  row.n = n;
  row.u = u;
  row.events = trace.size();
  row.ladder = ladder;
  const double total = static_cast<double>(trace.size());
  row.old_dps =
      total / timed_replay(trace, [&] { return Shadow(old_opts); }, reps);
  row.new_dps =
      total / timed_replay(trace, [&] { return Shadow(new_opts); }, reps);
  row.speedup = row.new_dps / row.old_dps;
  return row;
}

// ---------------------------------------------------------------- batch

struct BatchRow {
  std::size_t n = 0;
  double u = 0.0;
  std::size_t group = 0;
  std::size_t events = 0;       ///< group decisions in the trace
  double loop_dps = 0.0;         ///< full per-task loop baseline
  double shortcircuit_dps = 0.0; ///< abort-on-first-reject loop
  double batch_dps = 0.0;        ///< admit_group
  double speedup = 0.0;          ///< batch vs full loop (the headline)
  double speedup_vs_shortcircuit = 0.0;
};

/// Group-arrival churn: admit_group (one scan per group) vs the
/// per-task rollback loop (g scans), same controller options.
///
/// The trace is built with *admission feedback*: departures withdraw
/// keys that were actually admitted — the production shape (you can
/// only withdraw what is resident). A blind trace would mostly depart
/// never-admitted keys, pinning the system at capacity where nearly
/// every group is a cheap reject and there is no scan to share.
/// Decisions agree event-for-event across the compared paths (asserted
/// below), so the recorded trace is identical for both.
BatchRow run_batch_cell(std::size_t n, double u, std::size_t group_size,
                        std::size_t events, double epsilon,
                        std::uint64_t seed, std::int64_t reps) {
  AdmissionOptions opts;
  opts.epsilon = epsilon;
  opts.skip_exact = true;

  std::vector<TraceEvent> trace;
  trace.reserve(n + events);
  {
    Shadow ref(opts, GroupMode::Batch);
    Rng rng(seed);
    std::vector<Task> pool;
    std::size_t pool_next = 0;
    const auto draw = [&]() -> const Task& {
      if (pool_next == pool.size()) {
        GeneratorConfig gen;
        gen.tasks = static_cast<int>(n);
        gen.utilization = u;
        const TaskSet ts = generate_task_set(rng, gen);
        pool.assign(ts.begin(), ts.end());
        pool_next = 0;
      }
      return pool[pool_next++];
    };
    std::uint64_t key = 1;
    for (std::size_t i = 0; i < n; ++i) {  // warmup singles
      TraceEvent ev;
      ev.op = TraceOp::Arrive;
      ev.key = key++;
      ev.task = draw();
      (void)ref.step(ev);
      trace.push_back(std::move(ev));
    }
    for (std::size_t i = 0; i < events; ++i) {
      if (!ref.live.empty() && rng.bernoulli(0.55)) {
        TraceEvent ev;
        ev.op = TraceOp::Depart;
        const std::size_t pick = static_cast<std::size_t>(rng.uniform_time(
            0, static_cast<Time>(ref.live.size()) - 1));
        ev.key = ref.live[pick].first;
        (void)ref.step(ev);
        trace.push_back(std::move(ev));
      } else {
        TraceEvent ev;
        ev.op = TraceOp::ArriveGroup;
        ev.key = key++;
        ev.group.reserve(group_size);
        for (std::size_t j = 0; j < group_size; ++j) {
          ev.group.push_back(draw());
        }
        (void)ref.step(ev);
        trace.push_back(std::move(ev));
      }
    }
  }

  {
    Shadow full(opts, GroupMode::FullLoop);
    Shadow batch(opts, GroupMode::Batch);
    assert_agreement(trace, full, batch, "group vs full per-task loop");
  }
  {
    Shadow brief(opts, GroupMode::ShortLoop);
    Shadow batch(opts, GroupMode::Batch);
    assert_agreement(trace, brief, batch,
                     "group vs short-circuit per-task loop");
  }

  BatchRow row;
  row.n = n;
  row.u = u;
  row.group = group_size;
  std::size_t groups = 0;
  for (const TraceEvent& ev : trace) {
    groups += ev.op == TraceOp::ArriveGroup ? 1 : 0;
  }
  row.events = groups;
  const double total = static_cast<double>(groups);
  row.loop_dps =
      total / timed_replay_groups(
                  trace, [&] { return Shadow(opts, GroupMode::FullLoop); },
                  reps);
  row.shortcircuit_dps =
      total / timed_replay_groups(
                  trace,
                  [&] { return Shadow(opts, GroupMode::ShortLoop); },
                  reps);
  row.batch_dps =
      total / timed_replay_groups(
                  trace, [&] { return Shadow(opts, GroupMode::Batch); },
                  reps);
  row.speedup = row.batch_dps / row.loop_dps;
  row.speedup_vs_shortcircuit = row.batch_dps / row.shortcircuit_dps;
  return row;
}

// -------------------------------------------------------------- removal

struct RemovalRow {
  std::size_t n = 0;
  std::size_t checkpoints = 0;
  double eager_ns = 0.0;
  double tombstone_ns = 0.0;
  double speedup = 0.0;
};

/// Drain half the store, eager compaction vs tombstones, on the
/// single-segment layout (index off) where the per-removal memmove is
/// the whole checkpoint array — the cost the tombstones delete.
RemovalRow run_removal_cell(std::size_t n, double epsilon,
                            std::uint64_t seed, std::int64_t reps) {
  GeneratorConfig gen;
  gen.tasks = static_cast<int>(n);
  gen.utilization = 0.7;
  Rng rng(seed);
  const TaskSet ts = generate_task_set(rng, gen);
  // One shared removal order (Fisher-Yates with the bench rng).
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i-- > 1;) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_time(0, static_cast<Time>(i)));
    std::swap(order[i], order[j]);
  }
  const std::size_t removals = ts.size() / 2;

  RemovalRow row;
  row.n = n;
  const auto timed = [&](bool eager) {
    double best = 1e300;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      IncrementalDemand d(epsilon, /*use_slack_index=*/false, eager);
      d.reserve(ts.size());  // bulk load: one reservation up front
      std::vector<TaskId> ids;
      ids.reserve(ts.size());
      for (const Task& t : ts) ids.push_back(d.add(t));
      row.checkpoints = d.checkpoint_count();
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < removals; ++i) {
        (void)d.remove(ids[order[i]]);
      }
      best = std::min(best, seconds_since(t0));
    }
    return best * 1e9 / static_cast<double>(removals);
  };
  row.eager_ns = timed(/*eager=*/true);
  row.tombstone_ns = timed(/*eager=*/false);
  row.speedup = row.eager_ns / row.tombstone_ns;
  return row;
}

// ----------------------------------------------------------------- read

struct ReadRow {
  std::size_t readers = 0;
  double locked_qps = 0.0;
  double read_qps = 0.0;
  double speedup = 0.0;
};

/// Reader throughput against a churning engine: the epoch path takes
/// no shard mutex; the locked path convoys behind the writer.
ReadRow run_read_cell(std::size_t readers, double epsilon,
                      std::uint64_t seed, bool quick) {
  EngineOptions eopts;
  eopts.shards = 2;
  eopts.admission.epsilon = epsilon;
  eopts.admission.skip_exact = true;
  AdmissionEngine engine(eopts);

  // A saturated n=1000 writer: its admissions hold the shard mutex for
  // whole certified scans, which is exactly the convoy the epoch
  // headers remove for readers.
  const std::vector<TraceEvent> trace =
      make_trace(1000, 0.99, 4000, seed, 0.0, 1);
  // Pre-fill so the writer's admits carry realistic scan cost.
  std::vector<std::pair<std::uint64_t, GlobalTaskId>> live;
  std::size_t warm = 0;
  for (const TraceEvent& ev : trace) {
    if (ev.op != TraceOp::Arrive || warm >= 1000) break;
    const PlacementDecision d = engine.admit(ev.task);
    if (d.admitted) live.emplace_back(ev.key, d.id);
    ++warm;
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Remove one resident, then admit arrivals until one *rejects*:
    // every iteration ends in a failing certified scan (accepted
    // arrivals at this density are mostly certificate-covered and hold
    // the lock for nanoseconds — it is the boundary rejects that pin
    // the shard mutex for a whole scan, the convoy the locked read
    // path pays and the epoch path does not).
    Rng wrng(seed + 1);
    std::size_t cursor = warm;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!live.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            wrng.uniform_time(0, static_cast<Time>(live.size()) - 1));
        (void)engine.remove(live[pick].second);
        live[pick] = live.back();
        live.pop_back();
      }
      for (int tries = 0; tries < 8; ++tries) {
        if (cursor >= trace.size()) cursor = warm;
        const TraceEvent& ev = trace[cursor++];
        if (ev.op != TraceOp::Arrive) continue;
        const PlacementDecision d = engine.admit(ev.task);
        if (!d.admitted) break;  // the failing scan this loop exists for
        live.emplace_back(ev.key, d.id);
      }
    }
  });

  const double window = quick ? 0.08 : 0.25;
  const auto measure = [&](bool locked) {
    std::atomic<std::uint64_t> count{0};
    std::vector<std::thread> pool;
    pool.reserve(readers);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < readers; ++r) {
      pool.emplace_back([&] {
        // Allocation-free polling (stats_into reuses capacity): the
        // cell measures mutex convoy vs epoch reads, not malloc.
        EngineStats snap;
        std::uint64_t mine = 0;
        while (seconds_since(t0) < window) {
          if (locked) {
            engine.stats_locked_into(snap);
          } else {
            engine.stats_into(snap);
          }
          ++mine;
        }
        count.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : pool) t.join();
    return static_cast<double>(count.load()) / window;
  };

  ReadRow row;
  row.readers = readers;
  row.locked_qps = measure(/*locked=*/true);
  row.read_qps = measure(/*locked=*/false);
  row.speedup = row.read_qps / row.locked_qps;
  stop.store(true);
  writer.join();
  return row;
}

// ---------------------------------------------------------------- query

struct QueryRow {
  std::size_t n = 0;
  double old_ns = 0.0;
  double view_ns = 0.0;
  double speedup = 0.0;
};

QueryRow run_query_cell(std::size_t n, double epsilon, std::uint64_t seed,
                        std::int64_t reps, bool quick) {
  GeneratorConfig gen;
  gen.tasks = static_cast<int>(n);
  gen.utilization = 0.9;
  Rng rng(seed);
  const TaskSet ts = generate_task_set(rng, gen);

  ChakrabortyParams params;
  params.epsilon = epsilon;
  const Query q =
      Query::single(TestKind::Chakraborty, params).with_certificates(false);

  const std::size_t iters =
      std::max<std::size_t>(50, (quick ? 20000 : 100000) / n);
  double old_best = 1e300;
  double view_best = 1e300;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < iters; ++it) {
        // The legacy entry: every call copies the set into a Workload.
        (void)q.run(Workload::periodic(ts));
      }
      old_best = std::min(old_best, seconds_since(t0));
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < iters; ++it) {
        (void)q.run(WorkloadView(ts));  // zero-copy
      }
      view_best = std::min(view_best, seconds_since(t0));
    }
  }
  QueryRow row;
  row.n = n;
  row.old_ns = old_best * 1e9 / static_cast<double>(iters);
  row.view_ns = view_best * 1e9 / static_cast<double>(iters);
  row.speedup = row.old_ns / row.view_ns;
  return row;
}

// -------------------------------------------------------------- persist

struct PersistRow {
  std::size_t n = 0;
  std::size_t snapshot_bytes = 0;
  double save_ns = 0.0;
  double load_ns = 0.0;
  double append_ns = 0.0;
};

/// Durability costs on an n-resident controller: snapshot save/load
/// wall time (save includes fsync + atomic rename) and journal
/// ns/append under FsyncPolicy::None.
PersistRow run_persist_cell(std::size_t n, double epsilon,
                            std::uint64_t seed, std::int64_t reps) {
  AdmissionOptions opts;
  opts.epsilon = epsilon;
  opts.skip_exact = true;
  Shadow shadow(opts);
  const std::vector<TraceEvent> warm = make_trace(n, 0.9, 0, seed, 0.0, 1);
  for (const TraceEvent& ev : warm) (void)shadow.step(ev);

  PersistRow row;
  row.n = shadow.ctl.size();
  const std::string snap = "perf_persist.tmp.snap";
  const std::string wal = "perf_persist.tmp.wal";

  double save_best = 1e300;
  double load_best = 1e300;
  const std::int64_t iters = std::max<std::int64_t>(3, reps * 3);
  for (std::int64_t it = 0; it < iters; ++it) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      save_snapshot(shadow.ctl, snap, 0);
      save_best = std::min(save_best, seconds_since(t0));
    }
    {
      AdmissionController fresh(opts);
      const auto t0 = std::chrono::steady_clock::now();
      (void)load_snapshot(fresh, snap);
      load_best = std::min(load_best, seconds_since(t0));
    }
  }
  {
    std::ifstream f(snap, std::ios::binary | std::ios::ate);
    row.snapshot_bytes = static_cast<std::size_t>(f.tellg());
  }
  row.save_ns = save_best * 1e9;
  row.load_ns = load_best * 1e9;

  // Journal throughput: admit records for the resident tasks, cycled.
  TaskSet resident = shadow.ctl.snapshot();
  if (resident.empty()) resident.add(make_implicit_task(1, 10));
  const std::size_t appends = 4096;
  double append_best = 1e300;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    persist::Journal journal = persist::Journal::create(wal);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < appends; ++i) {
      (void)journal.append(
          journal_codec::admit(resident[i % resident.size()]));
    }
    append_best = std::min(append_best, seconds_since(t0));
  }
  row.append_ns = append_best * 1e9 / static_cast<double>(appends);
  std::remove(snap.c_str());
  std::remove(wal.c_str());
  return row;
}

// ------------------------------------------------------------------ obs

struct ObsRow {
  std::size_t n = 0;
  double u = 0.0;
  std::size_t events = 0;
  double plain_dps = 0.0;
  double instr_dps = 0.0;
  double ratio = 0.0;  ///< instr/plain; 1.0 = free instrumentation
};

/// The compiled-in-but-cheap contract, measured: the headline churn
/// with obs fully attached (metrics + flight recorder) vs nothing
/// attached (the ObsConfig::disabled() state — detached probes are one
/// branch). Two deliberate choices keep this cell gateable at 3%:
///
///  * It replays the suite's *headline admission cell* — the same
///    trace seed and options (slack index on, rung <= 2) as the
///    n=1000/U=0.99 row above — so the gated ratio is the overhead on
///    the configuration the suite headlines, not on a bespoke
///    workload that could drift toward either flattering or
///    pathological per-decision cost.
///  * The gated ratio is best-of/best-of over many interleaved
///    plain/instrumented replays with alternating order. Interference
///    on shared runners is one-sided (it only ever adds time), so the
///    minimum converges on the true cost of each side while a median
///    of pair ratios still flaps by ±1.5% — measured on this cell,
///    the min estimator repeats within ±0.3%. Alternating order
///    exposes both sides to the same frequency/steal environment.
///
/// `obs` is shared across repetitions so metric registration stays on
/// the cold path, exactly as in production.
ObsRow run_obs_cell(obs::Obs& obs, std::size_t n, double u,
                    std::size_t events, double epsilon,
                    std::uint64_t seed, std::int64_t reps) {
  const std::vector<TraceEvent> trace =
      make_trace(n, u, events, seed, 0.0, 1);
  AdmissionOptions opts;
  opts.epsilon = epsilon;
  opts.skip_exact = true;  // headline configuration: rung <= 2
  opts.use_slack_index = true;

  const auto run_once = [&](bool instrumented) {
    Shadow shadow(opts);
    if (instrumented) shadow.ctl.attach_obs(&obs);
    const auto t0 = std::chrono::steady_clock::now();
    for (const TraceEvent& ev : trace) (void)shadow.step(ev);
    return seconds_since(t0);
  };

  ObsRow row;
  row.n = n;
  row.u = u;
  row.events = trace.size();
  (void)run_once(false);  // warm both paths before timing
  (void)run_once(true);
  double best_plain = 1e300;
  double best_instr = 1e300;
  // The min estimator needs a decent sample even in --quick runs: each
  // pair is ~2 trace replays (~30ms), and the minimum only converges
  // once both sides have seen a quiet scheduling window — 40 pairs
  // (~1.2s) repeat within a fraction of the 3% gate on a noisy VM
  // where 24 still flapped.
  const std::int64_t pairs = std::max<std::int64_t>(10 * reps, 40);
  for (std::int64_t p = 0; p < pairs; ++p) {
    if (p % 2 == 0) {
      best_plain = std::min(best_plain, run_once(false));
      best_instr = std::min(best_instr, run_once(true));
    } else {
      best_instr = std::min(best_instr, run_once(true));
      best_plain = std::min(best_plain, run_once(false));
    }
  }
  const double total = static_cast<double>(trace.size());
  row.plain_dps = total / best_plain;
  row.instr_dps = total / best_instr;
  row.ratio = best_plain / best_instr;
  return row;
}

struct FaultRow {
  std::size_t n = 0;
  double u = 0.0;
  std::size_t events = 0;
  double off_dps = 0.0;    ///< all persist failpoints disarmed
  double armed_dps = 0.0;  ///< armed with a never-firing schedule
  double ratio = 0.0;      ///< armed/off; 1.0 = free when armed
};

/// The zero-overhead-when-off contract of src/fault/, measured where
/// it matters: the headline churn with a WAL attached, so every
/// decision's journal append crosses the persist failpoints. The
/// disarmed side is the shipped configuration (each site is one
/// relaxed atomic load); the armed side uses `after, n=1e15` — every
/// hit takes the full consume() slow path but no fault ever fires, the
/// worst case a chaos run imposes on operations it does not break.
/// Same best-of/best-of interleaved estimator as run_obs_cell.
FaultRow run_fault_cell(std::size_t n, double u, std::size_t events,
                        double epsilon, std::uint64_t seed,
                        std::int64_t reps) {
  const std::vector<TraceEvent> trace =
      make_trace(n, u, events, seed, 0.0, 1);
  AdmissionOptions opts;
  opts.epsilon = epsilon;
  opts.skip_exact = true;  // headline configuration: rung <= 2
  opts.use_slack_index = true;
  const std::string wal = "perf_fault.tmp.wal";

  const auto run_once = [&](bool armed) {
    fault::disarm_all();
    if (armed) {
      for (const char* site : fault::kPersistSites) {
        fault::point(site).arm(fault::Mode::AfterN,
                               /*n=*/1000000000000000ULL);
      }
    }
    Shadow shadow(opts);
    persist::Journal journal = persist::Journal::create(wal);
    shadow.ctl.attach_journal(&journal);
    const auto t0 = std::chrono::steady_clock::now();
    for (const TraceEvent& ev : trace) (void)shadow.step(ev);
    const double secs = seconds_since(t0);
    shadow.ctl.attach_journal(nullptr);
    return secs;
  };

  FaultRow row;
  row.n = n;
  row.u = u;
  row.events = trace.size();
  (void)run_once(false);  // warm both paths before timing
  (void)run_once(true);
  double best_off = 1e300;
  double best_armed = 1e300;
  const std::int64_t pairs = std::max<std::int64_t>(10 * reps, 40);
  for (std::int64_t p = 0; p < pairs; ++p) {
    if (p % 2 == 0) {
      best_off = std::min(best_off, run_once(false));
      best_armed = std::min(best_armed, run_once(true));
    } else {
      best_armed = std::min(best_armed, run_once(true));
      best_off = std::min(best_off, run_once(false));
    }
  }
  fault::disarm_all();
  std::remove(wal.c_str());
  const double total = static_cast<double>(trace.size());
  row.off_dps = total / best_off;
  row.armed_dps = total / best_armed;
  row.ratio = best_off / best_armed;
  return row;
}

struct NetRow {
  std::size_t n = 0;
  double u = 0.0;
  std::size_t events = 0;
  double local_dps = 0.0;  ///< trace straight into the controller
  double net_dps = 0.0;    ///< synchronous round trips over loopback
  double overhead_ns = 0.0;  ///< wall time the wire adds per decision
};

/// The cost of serving a decision over the wire instead of in-process:
/// the same churn trace replayed through a loopback net::Server (one
/// blocking connection, synchronous round trips — the worst case for
/// transport overhead; batching and fusing only improve on it) vs
/// straight into an AdmissionController. The controller options match
/// the admission headline (rung <= 2, slack index on), so
/// `overhead_ns` isolates framing + epoll + syscalls. Each repetition
/// serves a fresh tenant so the store evolution is identical on both
/// sides. Reported, not gated — the CI net-load job gates end-to-end
/// latency under concurrent load instead.
NetRow run_net_cell(std::size_t n, double u, std::size_t events,
                    double epsilon, std::uint64_t seed, std::int64_t reps) {
  const std::vector<TraceEvent> trace = make_trace(n, u, events, seed, 0.0, 1);
  AdmissionOptions opts;
  opts.epsilon = epsilon;
  opts.skip_exact = true;
  opts.use_slack_index = true;

  NetRow row;
  row.n = n;
  row.u = u;
  row.events = trace.size();

  const double best_local = timed_replay(
      trace, [&] { return Shadow(opts); }, reps);

  net::ServerOptions sopts;
  sopts.tenants.admission = opts;
  net::Server server(sopts);
  std::thread loop([&server] { server.run(); });
  double best_net = 1e300;
  for (std::int64_t rep = 0; rep < reps + 1; ++rep) {  // +1 warmup pass
    net::Client client = net::Client::connect("127.0.0.1", server.port());
    (void)client.hello("perf-rep-" + std::to_string(rep));
    std::vector<std::pair<std::uint64_t, std::vector<TaskId>>> live;
    const auto t0 = std::chrono::steady_clock::now();
    for (const TraceEvent& ev : trace) {
      net::NetRequest req;
      if (ev.op == TraceOp::Arrive) {
        req.hdr.op = static_cast<std::uint8_t>(net::NetOp::Admit);
        req.task = ev.task;
      } else if (ev.op == TraceOp::ArriveGroup) {
        req.hdr.op = static_cast<std::uint8_t>(net::NetOp::AdmitGroup);
        req.group = ev.group;
      } else if (ev.op == TraceOp::Depart) {
        std::size_t at = live.size();
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (live[i].first == ev.key) at = i;
        }
        if (at == live.size()) continue;
        req.hdr.op = static_cast<std::uint8_t>(net::NetOp::RemoveGroup);
        req.ids = std::move(live[at].second);
        live[at] = live.back();
        live.pop_back();
      } else {
        continue;
      }
      const net::NetResponse resp = client.call(std::move(req));
      if (resp.hdr.status ==
              static_cast<std::uint8_t>(net::NetStatus::Ok) &&
          ev.op == TraceOp::Arrive) {
        live.emplace_back(ev.key, std::vector<TaskId>{resp.id});
      } else if (resp.hdr.status ==
                     static_cast<std::uint8_t>(net::NetStatus::Ok) &&
                 ev.op == TraceOp::ArriveGroup) {
        live.emplace_back(ev.key, resp.ids);
      }
    }
    if (rep > 0) best_net = std::min(best_net, seconds_since(t0));
  }
  server.stop();
  loop.join();

  const double total = static_cast<double>(trace.size());
  row.local_dps = total / best_local;
  row.net_dps = total / best_net;
  row.overhead_ns = (best_net - best_local) / total * 1e9;
  return row;
}

struct ReplRow {
  std::size_t n = 0;
  double u = 0.0;
  std::size_t events = 0;
  double plain_dps = 0.0;  ///< decisions per serving-thread CPU second
  double repl_dps = 0.0;   ///< same, with a live standby + shipper attached
  double overhead_x = 0.0; ///< attached/detached serving-thread CPU time
};

/// CPU seconds consumed so far by `t`, via its POSIX thread CPU clock.
double thread_cpu_seconds(std::thread& t) {
  clockid_t cid{};
  if (pthread_getcpuclockid(t.native_handle(), &cid) != 0) return 0.0;
  timespec ts{};
  if (clock_gettime(cid, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// The pay-nothing-on-the-hot-path contract of src/repl/, measured:
/// the journaled headline churn served over a loopback net::Server
/// with a live hot standby attached (shipper tailing the WALs +
/// follower replaying + periodic digest pushes) vs the identical
/// server with no standby. The gated quantity is the *serving
/// thread's CPU time* per pass (its POSIX thread CPU clock, read
/// around each pass), not client wall time: the standby replays every
/// decision by design — duplicated work that on a small machine
/// steals wall clock through the scheduler without the primary doing
/// anything more — while everything the tentpole promises to keep off
/// the hot path (digest serialization, queue pushes) runs *in* the
/// loop thread and lands in its CPU clock. CI gates the ratio with
/// --gate-repl-overhead (1.05 = at most 5% added). Interleaved
/// best-of/best-of, alternating order; each side serves one stable
/// tenant so store evolution stays identical pass-for-pass across
/// sides (and digest pushes cover exactly one store per side).
ReplRow run_repl_cell(std::size_t n, double u, std::size_t events,
                      double epsilon, std::uint64_t seed,
                      std::int64_t reps) {
  const std::vector<TraceEvent> trace =
      make_trace(n, u, events, seed, 0.0, 1);
  AdmissionOptions opts;
  opts.epsilon = epsilon;
  opts.skip_exact = true;  // headline configuration: rung <= 2
  opts.use_slack_index = true;

  const std::string plain_dir = "perf_repl_plain.tmp";
  const std::string primary_dir = "perf_repl_primary.tmp";
  const std::string standby_dir = "perf_repl_standby.tmp";
  for (const auto& d : {plain_dir, primary_dir, standby_dir}) {
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
  }

  // Detached side: a journaled server, nothing tailing it.
  net::ServerOptions plain_opts;
  plain_opts.tenants.admission = opts;
  plain_opts.tenants.data_dir = plain_dir;
  net::Server plain(plain_opts);
  std::thread plain_loop([&plain] { plain.run(); });

  // Attached side: standby + shipper + digest pushes, all live.
  net::ServerOptions standby_opts;
  standby_opts.tenants.admission = opts;
  standby_opts.tenants.data_dir = standby_dir;
  standby_opts.tenants.standby = true;
  net::Server standby(standby_opts);
  std::thread standby_loop([&standby] { standby.run(); });
  repl::ShipperOptions ship_opts;
  ship_opts.port = standby.port();
  ship_opts.data_dir = primary_dir;
  ship_opts.poll_interval_ms = 1;
  repl::Shipper ship(ship_opts);
  net::ServerOptions primary_opts;
  primary_opts.tenants.admission = opts;
  primary_opts.tenants.data_dir = primary_dir;
  primary_opts.shipper = &ship;  // digest cadence: the shipped default
  net::Server primary(primary_opts);
  std::thread primary_loop([&primary] { primary.run(); });
  ship.start();

  // One serving pass: the trace over one blocking connection. Each
  // side reuses its one tenant, so pass k's store evolution is
  // identical on both sides for every k. Returns the serving thread's
  // CPU seconds consumed by the pass.
  const auto serve_pass = [&](net::Server& server, std::thread& loop,
                              const char* tenant) {
    net::Client client = net::Client::connect("127.0.0.1", server.port());
    (void)client.hello(tenant);
    std::vector<std::pair<std::uint64_t, std::vector<TaskId>>> live;
    const double cpu0 = thread_cpu_seconds(loop);
    for (const TraceEvent& ev : trace) {
      net::NetRequest req;
      if (ev.op == TraceOp::Arrive) {
        req.hdr.op = static_cast<std::uint8_t>(net::NetOp::Admit);
        req.task = ev.task;
      } else if (ev.op == TraceOp::Depart) {
        std::size_t at = live.size();
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (live[i].first == ev.key) at = i;
        }
        if (at == live.size()) continue;
        req.hdr.op = static_cast<std::uint8_t>(net::NetOp::RemoveGroup);
        req.ids = std::move(live[at].second);
        live[at] = live.back();
        live.pop_back();
      } else {
        continue;
      }
      const net::NetResponse resp = client.call(std::move(req));
      if (resp.hdr.status ==
              static_cast<std::uint8_t>(net::NetStatus::Ok) &&
          ev.op == TraceOp::Arrive) {
        live.emplace_back(ev.key, std::vector<TaskId>{resp.id});
      }
    }
    return thread_cpu_seconds(loop) - cpu0;
  };
  const auto plain_pass = [&] {
    return serve_pass(plain, plain_loop, "plain");
  };
  const auto repl_pass = [&] {
    return serve_pass(primary, primary_loop, "repl");
  };

  ReplRow row;
  row.n = n;
  row.u = u;
  row.events = trace.size();
  (void)plain_pass();  // warm both paths before timing
  (void)repl_pass();
  double best_plain = 1e300;
  double best_repl = 1e300;
  const std::int64_t pairs = std::max<std::int64_t>(reps + 1, 4);
  for (std::int64_t p = 0; p < pairs; ++p) {
    if (p % 2 == 0) {
      best_plain = std::min(best_plain, plain_pass());
      best_repl = std::min(best_repl, repl_pass());
    } else {
      best_repl = std::min(best_repl, repl_pass());
      best_plain = std::min(best_plain, plain_pass());
    }
  }

  ship.stop();
  plain.stop();
  primary.stop();
  standby.stop();
  plain_loop.join();
  primary_loop.join();
  standby_loop.join();
  for (const auto& d : {plain_dir, primary_dir, standby_dir}) {
    std::filesystem::remove_all(d);
  }

  const double total = static_cast<double>(trace.size());
  row.plain_dps = total / best_plain;
  row.repl_dps = total / best_repl;
  row.overhead_x = best_repl / best_plain;
  return row;
}

// ---------------------------------------------------------------- multi

struct MultiRow {
  std::uint32_t m = 0;     ///< platform width (global-EDF processors)
  std::size_t n = 0;       ///< warmup arrivals (resident scale ~ m pools)
  double u = 0.0;          ///< per-pool utilization
  std::size_t events = 0;
  double dps = 0.0;        ///< full-ladder global decisions per second
  double admit_rate = 0.0; ///< admitted arrivals / arrivals
};

/// Global-ladder throughput: the headline churn shape replayed through
/// ONE controller admitting against m processors (AdmissionOptions::
/// platform). Warmup scales with m — each 100-task pool carries ~0.99
/// utilization, and m pools resident saturate the platform — so the
/// cell exercises the whole cascade (GFB accepts early, the window
/// rungs and RTA near saturation, rejects past it), not just the
/// cheap-accept fast path.
MultiRow run_multi_cell(std::uint32_t m, std::size_t events, double epsilon,
                        std::uint64_t seed, std::int64_t reps) {
  constexpr std::size_t kPoolTasks = 100;
  ChurnConfig churn;
  churn.warmup_arrivals = kPoolTasks * m;
  churn.events = events;
  churn.pool_utilization = 0.99;
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = static_cast<int>(kPoolTasks);
  Rng rng(seed);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, churn);

  AdmissionOptions opts;
  opts.epsilon = epsilon;
  opts.platform = Platform{m};

  MultiRow row;
  row.m = m;
  row.n = kPoolTasks * m;
  row.u = 0.99;
  row.events = trace.size();
  {
    // Untimed pass for the admit rate (the saturation evidence).
    Shadow shadow(opts);
    std::size_t arrivals = 0;
    std::size_t admits = 0;
    for (const TraceEvent& ev : trace) {
      const bool ok = shadow.step(ev);
      if (ev.op != TraceOp::Depart) {
        ++arrivals;
        admits += ok ? 1 : 0;
      }
    }
    row.admit_rate =
        arrivals == 0 ? 0.0
                      : static_cast<double>(admits) /
                            static_cast<double>(arrivals);
  }
  row.dps = static_cast<double>(trace.size()) /
            timed_replay(trace, [&] { return Shadow(opts); }, reps);
  return row;
}

/// Scan-internals counters for one replay — the evidence attached to
/// known_regressions entries (why a cell is allowed below 1x).
struct ScanInternals {
  std::uint64_t iterations = 0;
  std::uint64_t refinements = 0;
  std::uint64_t walked = 0;
  std::uint64_t fast_forwarded = 0;
  std::uint64_t compactions = 0;
};

ScanInternals collect_internals(const std::vector<TraceEvent>& trace,
                                const AdmissionOptions& opts) {
  obs::Obs obs(obs::ObsConfig{/*metrics=*/true, /*tracing=*/false, 0});
  Shadow shadow(opts);
  shadow.ctl.attach_obs(&obs);
  for (const TraceEvent& ev : trace) (void)shadow.step(ev);
  const obs::MetricsRegistry& reg = obs.registry();
  ScanInternals out;
  out.iterations = reg.counter_value("admission_scan_iterations_total");
  out.refinements = reg.counter_value("admission_scan_refinements_total");
  out.walked = reg.counter_value("admission_segments_walked_total");
  out.fast_forwarded =
      reg.counter_value("admission_segments_fast_forwarded_total");
  out.compactions =
      reg.counter_value("admission_tombstone_compactions_total");
  return out;
}

/// One accepted sub-1x admission cell, with the scan internals of both
/// compared paths recorded as the explanation.
struct KnownRegression {
  std::size_t n = 0;
  double u = 0.0;
  double speedup = 0.0;
  ScanInternals index_off;
  ScanInternals index_on;
};

void emit_internals(bench::JsonEmitter& json, const char* key,
                    const ScanInternals& s) {
  json.begin_object(key)
      .kv("scan_iterations", static_cast<long long>(s.iterations))
      .kv("scan_refinements", static_cast<long long>(s.refinements))
      .kv("segments_walked", static_cast<long long>(s.walked))
      .kv("segments_fast_forwarded",
          static_cast<long long>(s.fast_forwarded))
      .kv("tombstone_compactions", static_cast<long long>(s.compactions))
      .end();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const bool quick = flags.get_bool("quick", false);
    bench::BenchSetup setup(flags, /*default_sets=*/quick ? 1 : 3);
    bench::banner("perf suite: demand-kernel hot paths, old vs new",
                  "regression harness (no paper figure); churn of §5 "
                  "workloads",
                  setup);

    const auto events =
        static_cast<std::size_t>(flags.get_int("events", 2000));
    const double epsilon = flags.get_double("epsilon", 0.25);
    const std::string json_path = flags.get("json", "BENCH_perf.json");
    const double tolerance = flags.get_double("tolerance", 0.2);
    const double gate_batch = flags.get_double("gate-batch", 0.0);
    const double gate_small_n = flags.get_double("gate-small-n", 0.0);
    const double gate_obs = flags.get_double("gate-obs-overhead", 0.0);
    const double gate_fault = flags.get_double("gate-fault-overhead", 0.0);
    const double gate_repl = flags.get_double("gate-repl-overhead", 0.0);
    const std::string obs_metrics_out = flags.get("obs-metrics-out", "");
    const std::string obs_trace_out = flags.get("obs-trace-out", "");

    setup.csv.header({"section", "n", "u", "events", "old", "new",
                      "speedup"});
    std::printf("%-10s %6s %6s %8s %14s %14s %9s\n", "section", "n", "u",
                "events", "old", "new", "speedup");

    std::vector<AdmissionRow> admission;
    std::vector<KnownRegression> known;
    for (const std::size_t n :
         {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
      // Small cells finish in single-digit milliseconds, where best-of
      // timing is scheduler-noise-bound: scale repetitions inversely
      // with cell size so the n=10 non-regression gate is stable.
      const std::int64_t reps =
          setup.sets * (n == 10 ? 10 : n == 100 ? 3 : 1);
      for (const double u : {0.7, 0.9, 0.99}) {
        const AdmissionRow row = run_admission_cell(
            n, u, events, epsilon, /*ladder=*/false,
            setup.seed + n * 1000 + static_cast<std::uint64_t>(u * 100),
            reps);
        admission.push_back(row);
        std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx\n",
                    "admission", n, u, row.events, row.old_dps, row.new_dps,
                    row.speedup);
        setup.csv.row_of("admission", static_cast<long long>(n), u,
                         static_cast<long long>(row.events), row.old_dps,
                         row.new_dps, row.speedup);
        if (row.speedup < 1.0 && n == 100) {
          // The accepted n=100 sub-1x cells: record the scan internals
          // of both paths as the explanation (index upkeep vs walks
          // too short to amortize it).
          const std::vector<TraceEvent> cell_trace = make_trace(
              n, u, events,
              setup.seed + n * 1000 + static_cast<std::uint64_t>(u * 100),
              0.0, 1);
          AdmissionOptions base;
          base.epsilon = epsilon;
          base.skip_exact = true;
          AdmissionOptions off = base;
          off.use_slack_index = false;
          AdmissionOptions on = base;
          on.use_slack_index = true;
          KnownRegression kr;
          kr.n = n;
          kr.u = u;
          kr.speedup = row.speedup;
          kr.index_off = collect_internals(cell_trace, off);
          kr.index_on = collect_internals(cell_trace, on);
          known.push_back(kr);
        }
      }
    }
    // One full-ladder cell: decisions are exact-backed on both paths, so
    // agreement is guaranteed by construction — a sanity anchor for the
    // rung-<=2 rows above.
    {
      const AdmissionRow row =
          run_admission_cell(100, 0.99, events, epsilon, /*ladder=*/true,
                             setup.seed + 777, setup.sets);
      admission.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx (ladder)\n",
                  "admission", row.n, row.u, row.events, row.old_dps,
                  row.new_dps, row.speedup);
      setup.csv.row_of("admission-ladder", 100LL, 0.99,
                       static_cast<long long>(row.events), row.old_dps,
                       row.new_dps, row.speedup);
    }

    // Batch group admission: one scan per 8-task group vs g scans.
    std::vector<BatchRow> batch;
    for (const std::size_t n : {std::size_t{100}, std::size_t{1000}}) {
      const BatchRow row = run_batch_cell(
          n, 0.99, /*group_size=*/8, events, epsilon,
          setup.seed + 31 * n, setup.sets);
      batch.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx "
                  "(g=8; %.2fx vs short-circuit)\n",
                  "batch", row.n, row.u, row.events, row.loop_dps,
                  row.batch_dps, row.speedup,
                  row.speedup_vs_shortcircuit);
      setup.csv.row_of("batch", static_cast<long long>(n), 0.99,
                       static_cast<long long>(row.events), row.loop_dps,
                       row.batch_dps, row.speedup);
    }

    // Tombstoned removals: ns/removal must not scale with store size.
    std::vector<RemovalRow> removal;
    for (const std::size_t n :
         {std::size_t{100}, std::size_t{1000}, std::size_t{4000}}) {
      const RemovalRow row =
          run_removal_cell(n, epsilon, setup.seed + 7 * n, setup.sets);
      removal.push_back(row);
      std::printf("%-10s %6zu %6s %8zu %12.0fns %12.0fns %8.2fx\n",
                  "removal", row.n, "-", row.checkpoints, row.eager_ns,
                  row.tombstone_ns, row.speedup);
      setup.csv.row_of("removal", static_cast<long long>(n), 0.0,
                       static_cast<long long>(row.checkpoints),
                       row.eager_ns, row.tombstone_ns, row.speedup);
    }

    // Concurrent reads: wait-free epoch headers vs the mutex path.
    std::vector<ReadRow> reads;
    {
      const ReadRow row =
          run_read_cell(/*readers=*/4, epsilon, setup.seed + 4242, quick);
      reads.push_back(row);
      std::printf("%-10s %6zu %6s %8s %11.0f/s %12.0f/s %8.2fx\n", "read",
                  row.readers, "-", "-", row.locked_qps, row.read_qps,
                  row.speedup);
      setup.csv.row_of("read", static_cast<long long>(row.readers), 0.0,
                       0LL, row.locked_qps, row.read_qps, row.speedup);
    }

    std::vector<QueryRow> queries;
    for (const std::size_t n :
         {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
      const QueryRow row =
          run_query_cell(n, epsilon, setup.seed + 13 * n, setup.sets, quick);
      queries.push_back(row);
      std::printf("%-10s %6zu %6s %8zu %12.0fns %12.0fns %8.2fx\n", "query",
                  n, "-", std::size_t{0}, row.old_ns, row.view_ns,
                  row.speedup);
      setup.csv.row_of("query", static_cast<long long>(n), 0.0, 0LL,
                       row.old_ns, row.view_ns, row.speedup);
    }

    // Durability costs: snapshot save/load + journal append (reported,
    // not gated — these run beside the decision path).
    std::vector<PersistRow> persists;
    for (const std::size_t n : {std::size_t{100}, std::size_t{1000}}) {
      const PersistRow row =
          run_persist_cell(n, epsilon, setup.seed + 17 * n, setup.sets);
      persists.push_back(row);
      std::printf("%-10s %6zu %6s %8zu %12.0fns %12.0fns (save/load; "
                  "%.0fns/journal-append)\n",
                  "persist", row.n, "-", row.snapshot_bytes, row.save_ns,
                  row.load_ns, row.append_ns);
      setup.csv.row_of("persist", static_cast<long long>(row.n), 0.0,
                       static_cast<long long>(row.snapshot_bytes),
                       row.save_ns, row.load_ns, row.append_ns);
    }

    // Instrumentation overhead: the headline churn, probes attached vs
    // detached. The Obs instance outlives the cell so its registry and
    // flight recorder can be dumped as CI artifacts below.
    obs::Obs obs_sink{obs::ObsConfig{}};  // defaults: the shipped config
    std::vector<ObsRow> obs_rows;
    {
      // Same seed formula as the admission sweep: this replays the
      // n=1000/U=0.99 headline cell byte-for-byte.
      const std::uint64_t obs_seed =
          setup.seed + 1000 * 1000 + static_cast<std::uint64_t>(0.99 * 100);
      ObsRow row = run_obs_cell(obs_sink, 1000, 0.99, events, epsilon,
                                obs_seed, setup.sets);
      // The min estimator only converges once each side catches a
      // quiet scheduling window, so a marginal first answer is a cue
      // for more evidence, not a verdict: re-measure with fresh pairs
      // (up to twice) and keep the best ratio. A real regression
      // fails every attempt; a noise spike fails at most one.
      for (int attempt = 1;
           gate_obs > 0.0 && row.ratio < gate_obs && attempt < 3;
           ++attempt) {
        const ObsRow again = run_obs_cell(obs_sink, 1000, 0.99, events,
                                          epsilon, obs_seed, setup.sets);
        if (again.ratio > row.ratio) row = again;
      }
      obs_rows.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx "
                  "(plain/instrumented)\n",
                  "obs", row.n, row.u, row.events, row.plain_dps,
                  row.instr_dps, row.ratio);
      setup.csv.row_of("obs", static_cast<long long>(row.n), row.u,
                       static_cast<long long>(row.events), row.plain_dps,
                       row.instr_dps, row.ratio);
    }
    // Failpoint overhead: the journaled headline churn with every
    // persist site disarmed vs armed-but-never-firing.
    std::vector<FaultRow> fault_rows;
    {
      const std::uint64_t fault_seed =
          setup.seed + 1000 * 1000 + static_cast<std::uint64_t>(0.99 * 100);
      FaultRow row = run_fault_cell(1000, 0.99, events, epsilon, fault_seed,
                                    setup.sets);
      // Same marginal-answer policy as the obs cell: a noise spike
      // fails at most one re-measurement, a real regression fails all.
      for (int attempt = 1;
           gate_fault > 0.0 && row.ratio < gate_fault && attempt < 3;
           ++attempt) {
        const FaultRow again = run_fault_cell(1000, 0.99, events, epsilon,
                                              fault_seed, setup.sets);
        if (again.ratio > row.ratio) row = again;
      }
      fault_rows.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx "
                  "(disarmed/armed)\n",
                  "fault", row.n, row.u, row.events, row.off_dps,
                  row.armed_dps, row.ratio);
      setup.csv.row_of("fault", static_cast<long long>(row.n), row.u,
                       static_cast<long long>(row.events), row.off_dps,
                       row.armed_dps, row.ratio);
    }
    // Wire overhead: the same decisions served over a loopback socket.
    std::vector<NetRow> net_rows;
    for (const std::size_t n : {std::size_t{100}, std::size_t{1000}}) {
      const NetRow row = run_net_cell(n, 0.99, events, epsilon,
                                      setup.seed + 53 * n, setup.sets);
      net_rows.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s "
                  "(+%.0fns/decision on the wire)\n",
                  "net", row.n, row.u, row.events, row.local_dps,
                  row.net_dps, row.overhead_ns);
      setup.csv.row_of("net", static_cast<long long>(row.n), row.u,
                       static_cast<long long>(row.events), row.local_dps,
                       row.net_dps, row.overhead_ns);
    }
    // Replication overhead: the journaled headline churn served with a
    // live hot standby attached vs detached.
    std::vector<ReplRow> repl_rows;
    {
      const std::uint64_t repl_seed =
          setup.seed + 1000 * 1000 + static_cast<std::uint64_t>(0.99 * 100);
      ReplRow row = run_repl_cell(1000, 0.99, events, epsilon, repl_seed,
                                  setup.sets);
      // Same marginal-answer policy as the obs/fault cells: noise fails
      // at most one re-measurement, a real regression fails them all.
      for (int attempt = 1;
           gate_repl > 0.0 && row.overhead_x > gate_repl && attempt < 3;
           ++attempt) {
        const ReplRow again = run_repl_cell(1000, 0.99, events, epsilon,
                                            repl_seed, setup.sets);
        if (again.overhead_x < row.overhead_x) row = again;
      }
      repl_rows.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12.0f/s %8.2fx "
                  "(serving-thread CPU, standby-attached/detached)\n",
                  "repl", row.n, row.u, row.events, row.plain_dps,
                  row.repl_dps, row.overhead_x);
      setup.csv.row_of("repl", static_cast<long long>(row.n), row.u,
                       static_cast<long long>(row.events), row.plain_dps,
                       row.repl_dps, row.overhead_x);
    }
    // Global-EDF ladder throughput at m processors (one controller,
    // AdmissionOptions::platform) — the multiprocessor portfolio cell.
    std::vector<MultiRow> multi_rows;
    for (const std::uint32_t m : {2u, 4u, 8u}) {
      const MultiRow row = run_multi_cell(
          m, events, epsilon, setup.seed + 77 * m, setup.sets);
      multi_rows.push_back(row);
      std::printf("%-10s %6zu %6.2f %8zu %12.0f/s %12s (m=%u, admit rate "
                  "%.2f)\n",
                  "multi", row.n, row.u, row.events, row.dps, "-", row.m,
                  row.admit_rate);
      setup.csv.row_of("multi", static_cast<long long>(row.n), row.u,
                       static_cast<long long>(row.events), row.dps,
                       static_cast<double>(row.m), row.admit_rate);
    }

    if (!obs_metrics_out.empty()) {
      std::ofstream out(obs_metrics_out);
      out << obs_sink.registry().to_prometheus();
      std::printf("obs metrics -> %s\n", obs_metrics_out.c_str());
    }
    if (!obs_trace_out.empty()) {
      std::ofstream out(obs_trace_out);
      out << obs_sink.recorder().to_json() << '\n';
      std::printf("obs flight recorder -> %s\n", obs_trace_out.c_str());
    }

    // Headlines: the saturated large-set admission and batch cells.
    const AdmissionRow* headline = nullptr;
    for (const AdmissionRow& row : admission) {
      if (row.n == 1000 && row.u == 0.99 && !row.ladder) headline = &row;
    }
    const BatchRow* batch_headline = nullptr;
    for (const BatchRow& row : batch) {
      if (row.n == 1000) batch_headline = &row;
    }

    bench::JsonEmitter json;
    json.kv("bench", "perf_suite")
        .kv("schema", 8LL)
        .kv("seed", static_cast<long long>(setup.seed))
        .kv("quick", quick)
        .kv("epsilon", epsilon);
    json.begin_array("admission");
    for (const AdmissionRow& row : admission) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("events", static_cast<long long>(row.events))
          .kv("ladder", row.ladder)
          .kv("old_dps", row.old_dps)
          .kv("new_dps", row.new_dps)
          .kv("speedup", row.speedup)
          .kv("agreement", true)
          .end();
    }
    json.end();
    json.begin_array("batch");
    for (const BatchRow& row : batch) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("group", static_cast<long long>(row.group))
          .kv("events", static_cast<long long>(row.events))
          .kv("loop_dps", row.loop_dps)
          .kv("shortcircuit_dps", row.shortcircuit_dps)
          .kv("batch_dps", row.batch_dps)
          .kv("speedup", row.speedup)
          .kv("speedup_vs_shortcircuit", row.speedup_vs_shortcircuit)
          .kv("agreement", true)
          .end();
    }
    json.end();
    json.begin_array("removal");
    for (const RemovalRow& row : removal) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("checkpoints", static_cast<long long>(row.checkpoints))
          .kv("eager_ns", row.eager_ns)
          .kv("tombstone_ns", row.tombstone_ns)
          .kv("speedup", row.speedup)
          .end();
    }
    json.end();
    json.begin_array("read");
    for (const ReadRow& row : reads) {
      json.begin_object()
          .kv("readers", static_cast<long long>(row.readers))
          .kv("locked_qps", row.locked_qps)
          .kv("read_qps", row.read_qps)
          .kv("speedup", row.speedup)
          .end();
    }
    json.end();
    json.begin_array("query");
    for (const QueryRow& row : queries) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("backend", "chakraborty")
          .kv("old_ns_per_query", row.old_ns)
          .kv("view_ns_per_query", row.view_ns)
          .kv("speedup", row.speedup)
          .end();
    }
    json.end();
    json.begin_array("persist");
    for (const PersistRow& row : persists) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("snapshot_bytes", static_cast<long long>(row.snapshot_bytes))
          .kv("save_ns", row.save_ns)
          .kv("load_ns", row.load_ns)
          .kv("journal_append_ns", row.append_ns)
          .end();
    }
    json.end();
    json.begin_array("obs");
    for (const ObsRow& row : obs_rows) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("events", static_cast<long long>(row.events))
          .kv("plain_dps", row.plain_dps)
          .kv("instr_dps", row.instr_dps)
          .kv("ratio", row.ratio)
          .end();
    }
    json.end();
    json.begin_array("fault");
    for (const FaultRow& row : fault_rows) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("events", static_cast<long long>(row.events))
          .kv("off_dps", row.off_dps)
          .kv("armed_dps", row.armed_dps)
          .kv("ratio", row.ratio)
          .end();
    }
    json.end();
    json.begin_array("net");
    for (const NetRow& row : net_rows) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("events", static_cast<long long>(row.events))
          .kv("local_dps", row.local_dps)
          .kv("net_dps", row.net_dps)
          .kv("wire_overhead_ns", row.overhead_ns)
          .end();
    }
    json.end();
    json.begin_array("repl");
    for (const ReplRow& row : repl_rows) {
      json.begin_object()
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("events", static_cast<long long>(row.events))
          .kv("plain_dps", row.plain_dps)
          .kv("repl_dps", row.repl_dps)
          .kv("overhead_x", row.overhead_x)
          .end();
    }
    json.end();
    json.begin_array("multi");
    for (const MultiRow& row : multi_rows) {
      json.begin_object()
          .kv("m", static_cast<long long>(row.m))
          .kv("n", static_cast<long long>(row.n))
          .kv("u", row.u)
          .kv("events", static_cast<long long>(row.events))
          .kv("ladder_dps", row.dps)
          .kv("admit_rate", row.admit_rate)
          .end();
    }
    json.end();
    json.begin_array("known_regressions");
    for (const KnownRegression& kr : known) {
      json.begin_object()
          .kv("section", "admission")
          .kv("n", static_cast<long long>(kr.n))
          .kv("u", kr.u)
          .kv("speedup", kr.speedup)
          .kv("note",
              "accepted: at n=100 the cached-slack index pays upkeep on "
              "every admit but the walks it would skip are already short; "
              "compare index_on.segments_fast_forwarded against "
              "index_off.segments_walked");
      emit_internals(json, "index_off", kr.index_off);
      emit_internals(json, "index_on", kr.index_on);
      json.end();
    }
    json.end();
    json.begin_object("headline")
        .kv("n", 1000LL)
        .kv("u", 0.99)
        .kv("old_dps", headline != nullptr ? headline->old_dps : 0.0)
        .kv("new_dps", headline != nullptr ? headline->new_dps : 0.0)
        .kv("speedup", headline != nullptr ? headline->speedup : 0.0)
        .end();
    json.begin_object("batch_headline")
        .kv("n", 1000LL)
        .kv("u", 0.99)
        .kv("group", 8LL)
        .kv("speedup",
            batch_headline != nullptr ? batch_headline->speedup : 0.0)
        .end();
    if (!json.write(json_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s (headline %.2fx at n=1000,U=0.99; "
                "group-admit %.2fx)\n",
                json_path.c_str(),
                headline != nullptr ? headline->speedup : 0.0,
                batch_headline != nullptr ? batch_headline->speedup : 0.0);

    if (flags.has("baseline")) {
      const std::string base_path = flags.get("baseline", "");
      std::ifstream f(base_path);
      if (!f) {
        std::fprintf(stderr, "error: cannot read baseline %s\n",
                     base_path.c_str());
        return 2;
      }
      std::stringstream buf;
      buf << f.rdbuf();
      const double base_speedup =
          bench::json_number_after(buf.str(), "headline", "speedup", -1.0);
      if (base_speedup <= 0.0) {
        std::fprintf(stderr, "error: baseline %s has no headline.speedup\n",
                     base_path.c_str());
        return 2;
      }
      const double now =
          headline != nullptr ? headline->speedup : 0.0;
      const double floor = base_speedup * (1.0 - tolerance);
      std::printf("baseline gate: %.2fx now vs %.2fx committed "
                  "(floor %.2fx)\n",
                  now, base_speedup, floor);
      if (now < floor) {
        std::fprintf(stderr,
                     "REGRESSION: headline speedup %.2fx fell below "
                     "%.2fx (baseline %.2fx - %.0f%%)\n",
                     now, floor, base_speedup, tolerance * 100.0);
        return 4;
      }
    }
    if (gate_batch > 0.0) {
      const double now =
          batch_headline != nullptr ? batch_headline->speedup : 0.0;
      std::printf("batch gate: %.2fx now vs %.2fx required\n", now,
                  gate_batch);
      if (now < gate_batch) {
        std::fprintf(stderr,
                     "REGRESSION: group-admit speedup %.2fx below the "
                     "%.2fx gate (n=1000, U=0.99, g=8)\n",
                     now, gate_batch);
        return 5;
      }
    }
    if (gate_small_n > 0.0) {
      for (const AdmissionRow& row : admission) {
        if (row.n != 10) continue;
        if (row.speedup < gate_small_n) {
          std::fprintf(stderr,
                       "REGRESSION: small-n cell (n=10, u=%.2f) at "
                       "%.2fx, below the %.2fx non-regression gate\n",
                       row.u, row.speedup, gate_small_n);
          return 6;
        }
      }
      std::printf("small-n gate: all n=10 cells >= %.2fx\n", gate_small_n);
    }
    if (gate_obs > 0.0) {
      for (const ObsRow& row : obs_rows) {
        std::printf("obs gate: %.3fx instrumented/plain vs %.2fx "
                    "required\n",
                    row.ratio, gate_obs);
        if (row.ratio < gate_obs) {
          std::fprintf(stderr,
                       "REGRESSION: instrumentation overhead ratio %.3fx "
                       "below the %.2fx gate (n=%zu, u=%.2f)\n",
                       row.ratio, gate_obs, row.n, row.u);
          return 7;
        }
      }
    }
    if (gate_fault > 0.0) {
      for (const FaultRow& row : fault_rows) {
        std::printf("fault gate: %.3fx armed/disarmed vs %.2fx required\n",
                    row.ratio, gate_fault);
        if (row.ratio < gate_fault) {
          std::fprintf(stderr,
                       "REGRESSION: armed-failpoint overhead ratio %.3fx "
                       "below the %.2fx gate (n=%zu, u=%.2f)\n",
                       row.ratio, gate_fault, row.n, row.u);
          return 8;
        }
      }
    }
    if (gate_repl > 0.0) {
      for (const ReplRow& row : repl_rows) {
        std::printf("repl gate: %.3fx standby-attached/detached vs "
                    "%.2fx allowed\n",
                    row.overhead_x, gate_repl);
        if (row.overhead_x > gate_repl) {
          std::fprintf(stderr,
                       "REGRESSION: hot-standby attachment costs %.3fx "
                       "on the primary serving path, above the %.2fx "
                       "gate (n=%zu, u=%.2f)\n",
                       row.overhead_x, gate_repl, row.n, row.u);
          return 9;
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
