/// \file table1_literature.cpp
/// Reproduces paper Table 1: iterations needed per feasibility test on
/// the five literature task sets (reconstructed — see DESIGN.md §7).
///
/// Paper values for reference:
///   set       | Devi  | Dyn | AllAppr | ProcDem
///   Burns     | 14    | 14  | 14      | 1,112
///   Ma & Shin | FAILED| 16  | 11      | 61
///   GAP       | 18    | 18  | 18      | 1,228
///   Gresser 1 | FAILED| 24  | 20      | 307
///   Gresser 2 | FAILED| 34  | 25      | 205
#include <cstdio>

#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "bench_common.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "lit/literature.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 1);
  bench::banner("Table 1: iterations for example task graphs",
                "Albers & Slomka DATE'05, Table 1", setup);

  setup.csv.header(
      {"set", "n", "utilization", "devi", "dynamic", "all_approx",
       "processor_demand", "qpa"});
  std::printf("%-10s %3s %7s | %8s %8s %9s %10s %6s\n", "set", "n", "U",
              "Devi", "Dyn.", "All Appr.", "Proc. Dem.", "QPA*");

  for (const auto& s : lit::all_literature_sets()) {
    const FeasibilityResult devi = devi_test(s.tasks);
    const FeasibilityResult dyn = dynamic_error_test(s.tasks);
    const FeasibilityResult aa = all_approx_test(s.tasks);
    const FeasibilityResult pd = processor_demand_test(s.tasks);
    const FeasibilityResult qpa = qpa_test(s.tasks);
    char devi_cell[32];
    if (devi.feasible()) {
      std::snprintf(devi_cell, sizeof devi_cell, "%llu",
                    static_cast<unsigned long long>(devi.iterations));
    } else {
      std::snprintf(devi_cell, sizeof devi_cell, "FAILED");
    }
    std::printf("%-10s %3zu %7.4f | %8s %8llu %9llu %10llu %6llu\n",
                s.name.c_str(), s.tasks.size(),
                s.tasks.utilization_double(), devi_cell,
                static_cast<unsigned long long>(dyn.effort()),
                static_cast<unsigned long long>(aa.effort()),
                static_cast<unsigned long long>(pd.iterations),
                static_cast<unsigned long long>(qpa.iterations));
    setup.csv.row_of(s.name, static_cast<long long>(s.tasks.size()),
                     s.tasks.utilization_double(), std::string(devi_cell),
                     static_cast<unsigned long long>(dyn.effort()),
                     static_cast<unsigned long long>(aa.effort()),
                     static_cast<unsigned long long>(pd.iterations),
                     static_cast<unsigned long long>(qpa.iterations));
  }
  std::printf(
      "\n(*) QPA (Zhang & Burns 2009) is the library's post-2005 extension "
      "comparator; it is not part of the paper's table.\n"
      "expected pattern: Devi FAILED on Ma&Shin/Gresser rows; new tests "
      "within a small factor of n; Proc. Dem. 5-100x above them.\n");
  return 0;
}
