/// \file rtc_comparison.cpp
/// Quantifies paper §3.6 / Figs. 3-4: the real-time-calculus curve
/// approximation accepts no more task sets than Devi's test (which is
/// SuperPos(1)), and the per-task envelope gap is exactly C*D/T.
///
/// Series reported: acceptance rate vs utilization for the RTC 2-segment
/// test, the Devi-envelope curve test, Devi's test proper, and the exact
/// test — expected ordering RTC <= Devi-envelope <= Devi <= exact.
#include <cstdio>

#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "bench_common.hpp"
#include "gen/scenario.hpp"
#include "rtc/arrival.hpp"
#include "rtc/rtc_feas.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 200);
  bench::banner("RTC vs Devi vs exact (paper §3.6, Figs. 3/4)",
                "Albers & Slomka DATE'05, §3.6", setup);

  setup.csv.header({"utilization", "rtc", "devi_envelope", "devi", "exact"});
  std::printf("%5s %8s %14s %8s %8s\n", "U(%)", "rtc", "devi-envelope",
              "devi", "exact");
  for (int u_pct = 40; u_pct <= 95; u_pct += 5) {
    Rng rng(setup.seed + static_cast<std::uint64_t>(u_pct));
    int rtc_ok = 0, env_ok = 0, devi_ok = 0, exact_ok = 0;
    for (std::int64_t i = 0; i < setup.sets; ++i) {
      const TaskSet ts = draw_fig1_set(rng, u_pct / 100.0);
      if (rtc::rtc_feasibility_test(ts).feasible()) ++rtc_ok;
      if (rtc::devi_envelope_test(ts).feasible()) ++env_ok;
      if (devi_test(ts).feasible()) ++devi_ok;
      if (processor_demand_test(ts).feasible()) ++exact_ok;
    }
    const double f = 100.0 / static_cast<double>(setup.sets);
    std::printf("%5d %7.1f%% %13.1f%% %7.1f%% %7.1f%%\n", u_pct, rtc_ok * f,
                env_ok * f, devi_ok * f, exact_ok * f);
    setup.csv.row_of(u_pct, rtc_ok * f, env_ok * f, devi_ok * f,
                     exact_ok * f);
  }

  // Per-task envelope gap (Fig. 4a vs Fig. 3): RTC - Devi == C*D/T.
  std::printf("\nper-task envelope gap (RTC minus Devi envelope), sample "
              "tasks:\n");
  std::printf("%22s %10s %12s\n", "task", "measured", "C*D/T");
  for (const auto& [c, d, t] :
       {std::tuple<Time, Time, Time>{3, 8, 10},
        std::tuple<Time, Time, Time>{10, 50, 100},
        std::tuple<Time, Time, Time>{7, 40, 200}}) {
    const Task task = make_task(c, d, t);
    const double gap = rtc::rtc_demand_periodic(task).eval(1000.0) -
                       rtc::devi_demand_envelope(task).eval(1000.0);
    std::printf("  (C=%3lld,D=%3lld,T=%4lld) %10.3f %12.3f\n",
                static_cast<long long>(c), static_cast<long long>(d),
                static_cast<long long>(t), gap,
                static_cast<double>(c) * static_cast<double>(d) /
                    static_cast<double>(t));
  }
  std::printf("\nexpected: rtc <= devi-envelope <= devi <= exact at every "
              "U; gap column pairs equal.\n");
  return 0;
}
