/// \file ablation_bounds.cpp
/// Ablation of the feasibility-bound choice (§4.3): how much work does
/// the processor-demand test save with each published bound, and how
/// tight are they relative to each other?
///
/// Expected: superposition == max(Dmax, George) for constrained
/// deadlines; Baruah's bound is the loosest; the busy period is tighter
/// yet on many sets but costs its own fixpoint iteration (the paper's
/// §4.3 caveat).
#include <cstdio>
#include <optional>

#include "analysis/bounds.hpp"
#include "analysis/processor_demand.hpp"
#include "bench_common.hpp"
#include "gen/scenario.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 150);
  bench::banner("Ablation: feasibility bounds (Baruah/George/superpos/busy)",
                "paper §4.3", setup);

  for (int u_pct : {90, 95, 99}) {
    Rng rng(setup.seed + static_cast<std::uint64_t>(u_pct));
    OnlineStats baruah_s, george_s, sup_s, busy_s;
    OnlineStats pd_george, pd_busy;
    int busy_known = 0;
    for (std::int64_t i = 0; i < setup.sets; ++i) {
      const TaskSet ts = draw_fig8_set(rng, u_pct / 100.0);
      const auto b = baruah_bound(ts);
      const auto g = george_bound(ts);
      const auto s = superposition_bound(ts);
      const auto l = busy_period(ts);
      if (b) baruah_s.add(static_cast<double>(*b));
      if (g) george_s.add(static_cast<double>(*g));
      if (s) sup_s.add(static_cast<double>(*s));
      if (l) {
        busy_s.add(static_cast<double>(*l));
        ++busy_known;
      }
      ProcessorDemandOptions with_busy;
      with_busy.use_busy_period = true;
      pd_george.add(
          static_cast<double>(processor_demand_test(ts).iterations));
      pd_busy.add(static_cast<double>(
          processor_demand_test(ts, with_busy).iterations));
    }
    std::printf("U=%d%%\n", u_pct);
    std::printf("  avg bound: baruah=%.0f george=%.0f superpos=%.0f "
                "busy=%.0f (busy computable on %d/%lld sets)\n",
                baruah_s.mean(), george_s.mean(), sup_s.mean(),
                busy_s.mean(), busy_known,
                static_cast<long long>(setup.sets));
    std::printf("  processor-demand iterations: default bound avg=%.0f, "
                "with busy-period avg=%.0f (%.1fx saving)\n\n",
                pd_george.mean(), pd_busy.mean(),
                pd_george.mean() / std::max(1.0, pd_busy.mean()));
  }
  std::printf("expected: baruah >= george ~ superpos (constrained sets); "
              "busy period gives a further constant-factor saving at the "
              "cost of its own fixpoint computation.\n");
  return 0;
}
