/// \file fig9_period_ratio.cpp
/// Reproduces paper Figure 9: maximum (and average) effort as a function
/// of the period spread Tmax/Tmin, swept from 100 to 1,000,000.
///
/// Paper setup: 4,000 sets per ratio, 5-100 tasks, gaps 10-50 %,
/// U in [90, 100) %. Default here is 40 sets per ratio — the processor-
/// demand test reaches tens of millions of iterations per set at ratio
/// 10^6, exactly as the paper reports, so sampling is the budget knob.
///
/// Expected shape: processor-demand max effort explodes with the ratio
/// (up to ~10^7); the dynamic and all-approximated tests stay flat in
/// the thousands — "the effort doesn't depend on the ratio of the
/// periods" (§5).
#include <array>
#include <cstdio>

#include "analysis/processor_demand.hpp"
#include "bench_common.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "gen/scenario.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 40);
  bench::banner("Figure 9: effort vs period ratio Tmax/Tmin",
                "Albers & Slomka DATE'05, Fig. 9", setup);

  constexpr std::array<Time, 6> kRatios = {100,     1'000,   10'000,
                                           100'000, 500'000, 1'000'000};
  setup.csv.header({"ratio", "dyn_avg", "dyn_max", "aa_avg", "aa_max",
                    "pd_avg", "pd_max"});
  std::printf("%9s | %8s %9s | %8s %9s | %10s %12s\n", "Tmax/Tmin",
              "dyn avg", "dyn max", "aa avg", "aa max", "pd avg", "pd max");

  for (const Time ratio : kRatios) {
    Rng rng(setup.seed + static_cast<std::uint64_t>(ratio));
    OnlineStats dyn_s;
    OnlineStats aa_s;
    OnlineStats pd_s;
    for (std::int64_t i = 0; i < setup.sets; ++i) {
      const TaskSet ts = draw_fig9_set(rng, ratio);
      dyn_s.add(static_cast<double>(dynamic_error_test(ts).effort()));
      aa_s.add(static_cast<double>(all_approx_test(ts).effort()));
      pd_s.add(static_cast<double>(processor_demand_test(ts).iterations));
    }
    std::printf("%9lld | %8.0f %9.0f | %8.0f %9.0f | %10.0f %12.0f\n",
                static_cast<long long>(ratio), dyn_s.mean(), dyn_s.max(),
                aa_s.mean(), aa_s.max(), pd_s.mean(), pd_s.max());
    setup.csv.row_of(static_cast<long long>(ratio), dyn_s.mean(),
                     dyn_s.max(), aa_s.mean(), aa_s.max(), pd_s.mean(),
                     pd_s.max());
  }
  std::printf("\nexpected shape: pd max explodes with the ratio (paper: "
              ">5*10^7 at 10^6); dyn and aa stay flat, orders of magnitude "
              "below.\n");
  return 0;
}
