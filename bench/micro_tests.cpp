/// \file micro_tests.cpp
/// google-benchmark wall-clock measurements supporting the paper's §5
/// remark that "the run-time overhead of one iteration of the new tests
/// is small compared to both alternative algorithms": per-call latency
/// of every feasibility test on the literature sets and on a
/// paper-style random workload.
#include <benchmark/benchmark.h>

#include "analysis/chakraborty.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "core/superpos.hpp"
#include "gen/scenario.hpp"
#include "lit/literature.hpp"

namespace {

using namespace edfkit;

const TaskSet& random_high_util_set() {
  static const TaskSet ts = [] {
    Rng rng(4242);
    return draw_fig8_set(rng, 0.97);
  }();
  return ts;
}

void BM_Devi_Random(benchmark::State& state) {
  const TaskSet& ts = random_high_util_set();
  for (auto _ : state) benchmark::DoNotOptimize(devi_test(ts).verdict);
}
BENCHMARK(BM_Devi_Random);

void BM_SuperPos3_Random(benchmark::State& state) {
  const TaskSet& ts = random_high_util_set();
  for (auto _ : state)
    benchmark::DoNotOptimize(superpos_test(ts, 3).verdict);
}
BENCHMARK(BM_SuperPos3_Random);

void BM_Chakraborty_Random(benchmark::State& state) {
  const TaskSet& ts = random_high_util_set();
  for (auto _ : state)
    benchmark::DoNotOptimize(chakraborty_test(ts, 0.25).base.verdict);
}
BENCHMARK(BM_Chakraborty_Random);

void BM_Dynamic_Random(benchmark::State& state) {
  const TaskSet& ts = random_high_util_set();
  for (auto _ : state)
    benchmark::DoNotOptimize(dynamic_error_test(ts).verdict);
}
BENCHMARK(BM_Dynamic_Random);

void BM_AllApprox_Random(benchmark::State& state) {
  const TaskSet& ts = random_high_util_set();
  for (auto _ : state)
    benchmark::DoNotOptimize(all_approx_test(ts).verdict);
}
BENCHMARK(BM_AllApprox_Random);

void BM_ProcessorDemand_Random(benchmark::State& state) {
  const TaskSet& ts = random_high_util_set();
  for (auto _ : state)
    benchmark::DoNotOptimize(processor_demand_test(ts).verdict);
}
BENCHMARK(BM_ProcessorDemand_Random);

void BM_Qpa_Random(benchmark::State& state) {
  const TaskSet& ts = random_high_util_set();
  for (auto _ : state) benchmark::DoNotOptimize(qpa_test(ts).verdict);
}
BENCHMARK(BM_Qpa_Random);

// Per-literature-set latency of the paper's two new tests vs the
// classic exact test (Table 1 in wall-clock form).
void BM_Literature(benchmark::State& state) {
  const auto sets = lit::all_literature_sets();
  const auto& s = sets[static_cast<std::size_t>(state.range(0))];
  const int which = static_cast<int>(state.range(1));
  for (auto _ : state) {
    switch (which) {
      case 0:
        benchmark::DoNotOptimize(dynamic_error_test(s.tasks).verdict);
        break;
      case 1:
        benchmark::DoNotOptimize(all_approx_test(s.tasks).verdict);
        break;
      default:
        benchmark::DoNotOptimize(processor_demand_test(s.tasks).verdict);
        break;
    }
  }
  state.SetLabel(s.name + (which == 0 ? "/dynamic"
                                      : which == 1 ? "/all-approx"
                                                   : "/processor-demand"));
}
BENCHMARK(BM_Literature)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 4, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Unit(benchmark::kMicrosecond);

// Workload generation itself (so figure runtimes can be attributed).
void BM_GenerateFig8Set(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(draw_fig8_set(rng, 0.95).size());
  }
}
BENCHMARK(BM_GenerateFig8Set)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
