/// \file fig8_effort_utilization.cpp
/// Reproduces paper Figure 8: maximum and average effort (test intervals
/// checked) of the dynamic-error test, the all-approximated test and the
/// processor-demand test for utilizations 90-99 %.
///
/// Paper setup: 18,000 task sets, 5-100 tasks, average gaps 20/30/40 %.
/// Default here is 120 sets per 1 %-bucket (=1,200 total); use
/// --sets 1800 to match the paper's sampling.
///
/// Expected shape: processor-demand effort grows steeply with U (its
/// test bound scales with 1/(1-U)); both new tests stay well below it,
/// with the gap widening as U -> 1.
#include <cstdio>

#include "analysis/processor_demand.hpp"
#include "bench_common.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "gen/scenario.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 120);
  bench::banner("Figure 8: effort vs utilization (90-99 %)",
                "Albers & Slomka DATE'05, Fig. 8", setup);

  setup.csv.header({"utilization", "dyn_avg", "dyn_max", "aa_avg", "aa_max",
                    "pd_avg", "pd_max", "feasible_pct"});
  std::printf("%5s | %9s %9s | %9s %9s | %9s %9s | %8s\n", "U(%)", "dyn avg",
              "dyn max", "aa avg", "aa max", "pd avg", "pd max", "feas %");

  for (int u_pct = 90; u_pct <= 99; ++u_pct) {
    Rng rng(setup.seed + static_cast<std::uint64_t>(u_pct) * 131);
    OnlineStats dyn_s;
    OnlineStats aa_s;
    OnlineStats pd_s;
    int feasible = 0;
    for (std::int64_t i = 0; i < setup.sets; ++i) {
      const TaskSet ts = draw_fig8_set(rng, u_pct / 100.0);
      const FeasibilityResult dyn = dynamic_error_test(ts);
      const FeasibilityResult aa = all_approx_test(ts);
      const FeasibilityResult pd = processor_demand_test(ts);
      dyn_s.add(static_cast<double>(dyn.effort()));
      aa_s.add(static_cast<double>(aa.effort()));
      pd_s.add(static_cast<double>(pd.iterations));
      if (pd.feasible()) ++feasible;
    }
    const double fp = 100.0 * feasible / static_cast<double>(setup.sets);
    std::printf("%5d | %9.0f %9.0f | %9.0f %9.0f | %9.0f %9.0f | %7.1f%%\n",
                u_pct, dyn_s.mean(), dyn_s.max(), aa_s.mean(), aa_s.max(),
                pd_s.mean(), pd_s.max(), fp);
    setup.csv.row_of(u_pct, dyn_s.mean(), dyn_s.max(), aa_s.mean(),
                     aa_s.max(), pd_s.mean(), pd_s.max(), fp);
  }
  std::printf("\nexpected shape: pd avg/max grow steeply toward U=99%% "
              "(bound ~ 1/(1-U)); dyn and aa stay far below.\n");
  return 0;
}
