/// \file admission_throughput.cpp
/// Admission-decision throughput: the incremental controller vs
/// from-scratch re-analysis per decision, over identical churn traces.
///
///   ./admission_throughput [--events 2000] [--epsilon 0.25]
///                          [--baseline qpa] [--utilization 0.9]
///                          [--seed N] [--sets N] [--csv out.csv]
///
/// For each resident-set size n and admission regime — `operational`
/// (utilization headroom policy at 0.90, how a production controller
/// runs) and `saturated` (no cap: every arrival that provably fits is
/// admitted, the adversarial regime) — a trace of `events` churn
/// operations is replayed twice: through an AdmissionController
/// (incremental demand state + escalation ladder) and through a
/// baseline that re-runs an exact analyzer test on the full widened set
/// for every arrival (the repo's pre-existing run_test workflow).
/// Decisions must agree on every event — both paths are exact — and
/// the headline number is the decisions/sec ratio (target: >= 5x at
/// n >= 50 in the operational regime).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <vector>

#include "admission/controller.hpp"
#include "admission/replay.hpp"
#include "bench_common.hpp"
#include "query/query.hpp"

namespace {

using namespace edfkit;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// From-scratch baseline: admit iff the same policy gate passes and a
/// single-backend Query on the widened set accepts (the repo's offline
/// analysis workflow). Stateless by design — both the utilization sum
/// and the analysis are recomputed per arrival.
struct ScratchAdmission {
  TestKind kind;
  double utilization_cap;
  std::vector<std::pair<std::uint64_t, Task>> live;

  bool try_admit(std::uint64_t key, const Task& t) {
    if (utilization_cap < 1.0) {
      double u = t.utilization_double();
      for (const auto& [k, task] : live) u += task.utilization_double();
      if (u > utilization_cap) return false;
    }
    std::vector<Task> widened;
    widened.reserve(live.size() + 1);
    for (const auto& [k, task] : live) widened.push_back(task);
    widened.push_back(t);
    const bool ok = Query::single(kind)
                        .with_certificates(false)
                        .run(Workload::periodic(TaskSet(std::move(widened))))
                        .feasible();
    if (ok) live.emplace_back(key, t);
    return ok;
  }
  /// Departures need no analysis from scratch either (monotone), so the
  /// comparison isolates the per-arrival analysis cost.
  void depart(std::uint64_t key) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->first == key) {
        live.erase(it);
        return;
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    // `sets` = timing repetitions per point; best-of is reported (the
    // usual throughput-bench noise shield on shared machines).
    bench::BenchSetup setup(flags, /*default_sets=*/3);
    bench::banner("admission throughput: incremental vs from-scratch",
                  "online subsystem (no paper figure); workload of §5 Fig. 8",
                  setup);

    const auto events =
        static_cast<std::size_t>(flags.get_int("events", 2000));
    const double epsilon = flags.get_double("epsilon", 0.25);
    const double pool_u = flags.get_double("utilization", 0.9);
    TestKind baseline_kind = TestKind::Qpa;
    if (flags.has("baseline")) {
      const std::string want = flags.get("baseline", "");
      bool found = false;
      for (const TestKind k : all_test_kinds()) {
        if (want == to_string(k) && is_exact(k)) {
          baseline_kind = k;
          found = true;
        }
      }
      if (!found) {
        throw std::invalid_argument("--baseline must name an exact test");
      }
    }

    setup.csv.header({"regime", "n", "events", "incremental_dps",
                      "scratch_dps", "speedup", "exact_escalations"});
    std::printf("%-12s %6s %10s %14s %14s %9s %8s\n", "regime", "n",
                "events", "incr dps", "scratch dps", "speedup", "exact%");

    for (const double cap : {0.9, 1.0}) {
      const char* regime = cap < 1.0 ? "operational" : "saturated";
      for (const std::size_t n : {std::size_t{10}, std::size_t{25},
                                  std::size_t{50}, std::size_t{100}}) {
        ChurnConfig churn;
        churn.warmup_arrivals = n;
        churn.events = events;
        churn.pool_utilization = pool_u;
        // Fixed per-set task count: per-task utilization ~ pool_u/n, so
        // the warm resident set sits near the admission boundary
        // regardless of n and the sweep scales size, not saturation.
        churn.family = ChurnConfig::Family::Fixed;
        churn.fixed_tasks = static_cast<int>(n);
        Rng rng(setup.seed + n);
        const std::vector<TraceEvent> trace =
            generate_churn_trace(rng, churn);

        AdmissionOptions opts;
        opts.epsilon = epsilon;
        opts.exact_fallback = baseline_kind;
        opts.utilization_cap = cap;
        double incr_secs = 1e300;
        ReplayStats incr;
        for (std::int64_t rep = 0; rep < setup.sets; ++rep) {
          AdmissionController controller(opts);
          const auto t0 = std::chrono::steady_clock::now();
          incr = replay_trace(trace, controller);
          incr_secs = std::min(incr_secs, seconds_since(t0));
        }
        if (flags.get_bool("verbose", false)) {
          std::printf("  incremental: %s\n", incr.to_string().c_str());
        }

        // From-scratch baseline over the same trace, timed pure…
        double scratch_secs = 1e300;
        for (std::int64_t rep = 0; rep < setup.sets; ++rep) {
          ScratchAdmission pure{baseline_kind, cap, {}};
          const auto t1 = std::chrono::steady_clock::now();
          for (const TraceEvent& ev : trace) {
            if (ev.op == TraceOp::Arrive) {
              (void)pure.try_admit(ev.key, ev.task);
            } else {
              pure.depart(ev.key);
            }
          }
          scratch_secs = std::min(scratch_secs, seconds_since(t1));
        }

        // …then re-run both untimed, asserting decision agreement.
        std::uint64_t disagreements = 0;
        {
          ScratchAdmission scratch{baseline_kind, cap, {}};
          AdmissionController shadow(opts);
          std::vector<std::pair<std::uint64_t, TaskId>> shadow_ids;
          for (const TraceEvent& ev : trace) {
            if (ev.op == TraceOp::Arrive) {
              const bool ok = scratch.try_admit(ev.key, ev.task);
              const AdmissionDecision d = shadow.try_admit(ev.task);
              if (d.admitted != ok) ++disagreements;
              if (d.admitted) shadow_ids.emplace_back(ev.key, d.id);
            } else {
              scratch.depart(ev.key);
              for (auto it = shadow_ids.begin(); it != shadow_ids.end();
                   ++it) {
                if (it->first == ev.key) {
                  shadow.remove(it->second);
                  shadow_ids.erase(it);
                  break;
                }
              }
            }
          }
        }
        if (disagreements != 0) {
          // The feasibility analyses are exact and must agree; the
          // utilization-cap policy gate is float-rounded on both sides,
          // so boundary-exact collisions could in principle differ —
          // treat any disagreement as an error until observed otherwise.
          std::fprintf(stderr,
                       "BUG: %llu decision mismatches (regime=%s n=%zu)\n",
                       static_cast<unsigned long long>(disagreements),
                       regime, n);
          return 3;
        }

        const double total = static_cast<double>(trace.size());
        const double incr_dps = total / incr_secs;
        const double scratch_dps = total / scratch_secs;
        const double speedup = incr_dps / scratch_dps;
        const double exact_pct =
            100.0 *
            static_cast<double>(
                incr.by_rung[static_cast<std::size_t>(
                    AdmissionRung::Exact)]) /
            static_cast<double>(incr.arrivals);
        std::printf("%-12s %6zu %10zu %14.0f %14.0f %8.1fx %7.1f%%\n",
                    regime, n, trace.size(), incr_dps, scratch_dps,
                    speedup, exact_pct);
        setup.csv.row_of(regime, static_cast<long long>(n),
                         static_cast<long long>(trace.size()), incr_dps,
                         scratch_dps, speedup, exact_pct);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
