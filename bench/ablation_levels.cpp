/// \file ablation_levels.cpp
/// Ablation of the dynamic test's level-growth schedule (§4.1). The
/// paper proposes doubling ("we propose to double the level at each step
/// which limits the amount of steps to log n_max"); this bench compares
/// +1, x2 and x4 growth on high-utilization workloads.
///
/// Expected: identical verdicts; +1 growth costs more level-raising
/// rounds on hard sets, x4 overshoots with extra exact test intervals;
/// x2 sits at or near the minimum — supporting the paper's choice.
#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "core/dynamic_test.hpp"
#include "gen/scenario.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 150);
  bench::banner("Ablation: dynamic-test level growth (+1 / x2 / x4)",
                "design choice in §4.1", setup);

  struct Policy {
    const char* name;
    Time factor;
  };
  constexpr std::array<Policy, 3> kPolicies = {
      Policy{"+1", 1}, Policy{"x2", 2}, Policy{"x4", 4}};

  setup.csv.header({"utilization", "policy", "avg_effort", "max_effort",
                    "avg_level"});
  std::printf("%5s | %-6s %11s %11s %10s\n", "U(%)", "policy", "avg effort",
              "max effort", "avg level");
  for (int u_pct = 94; u_pct <= 99; ++u_pct) {
    for (const Policy& p : kPolicies) {
      Rng rng(setup.seed + static_cast<std::uint64_t>(u_pct));
      OnlineStats effort;
      OnlineStats level;
      for (std::int64_t i = 0; i < setup.sets; ++i) {
        const TaskSet ts = draw_fig8_set(rng, u_pct / 100.0);
        DynamicTestOptions opts;
        opts.growth_factor = p.factor;
        const FeasibilityResult r = dynamic_error_test(ts, opts);
        effort.add(static_cast<double>(r.effort()));
        level.add(static_cast<double>(r.final_level));
      }
      std::printf("%5d | %-6s %11.0f %11.0f %10.1f\n", u_pct, p.name,
                  effort.mean(), effort.max(), level.mean());
      setup.csv.row_of(u_pct, p.name, effort.mean(), effort.max(),
                       level.mean());
    }
  }
  std::printf("\nexpected: all policies agree on verdicts (asserted in the "
              "test suite); x2 effort at or near the minimum.\n");
  return 0;
}
