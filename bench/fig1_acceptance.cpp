/// \file fig1_acceptance.cpp
/// Reproduces paper Figure 1: percentage of task sets deemed feasible by
/// Devi's test, SuperPos(2..10) and the exact processor-demand test, as a
/// function of utilization (70-100 %).
///
/// Expected shape (paper): all curves decline with utilization; Devi is
/// the lowest; SuperPos(x) improves monotonically with x and approaches
/// the exact curve from below.
#include <array>
#include <cstdio>
#include <vector>

#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "bench_common.hpp"
#include "core/superpos.hpp"
#include "gen/scenario.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  bench::BenchSetup setup(flags, 150);
  bench::banner("Figure 1: acceptance rate vs utilization",
                "Albers & Slomka DATE'05, Fig. 1", setup);

  constexpr std::array<Time, 9> kLevels = {2, 3, 4, 5, 6, 7, 8, 9, 10};
  setup.csv.header({"utilization", "devi", "sp2", "sp3", "sp4", "sp5", "sp6",
                    "sp7", "sp8", "sp9", "sp10", "exact"});

  std::printf("%5s %6s", "U(%)", "devi");
  for (const Time lv : kLevels) std::printf("   sp%-3lld", (long long)lv);
  std::printf(" %6s\n", "exact");

  for (int u_pct = 70; u_pct <= 100; u_pct += 2) {
    const double u = (u_pct == 100) ? 0.9999 : u_pct / 100.0;
    Rng rng(setup.seed + static_cast<std::uint64_t>(u_pct));
    int devi_ok = 0;
    std::array<int, kLevels.size()> sp_ok{};
    int exact_ok = 0;
    for (std::int64_t i = 0; i < setup.sets; ++i) {
      const TaskSet ts = draw_fig1_set(rng, u);
      if (devi_test(ts).feasible()) ++devi_ok;
      for (std::size_t l = 0; l < kLevels.size(); ++l) {
        if (superpos_test(ts, kLevels[l]).feasible()) ++sp_ok[l];
      }
      if (processor_demand_test(ts).feasible()) ++exact_ok;
    }
    const double f = 100.0 / static_cast<double>(setup.sets);
    std::printf("%5d %5.1f%%", u_pct, devi_ok * f);
    for (const int ok : sp_ok) std::printf(" %5.1f%%", ok * f);
    std::printf(" %5.1f%%\n", exact_ok * f);
    std::vector<std::string> row = {std::to_string(u_pct),
                                    std::to_string(devi_ok * f)};
    for (const int ok : sp_ok) row.push_back(std::to_string(ok * f));
    row.push_back(std::to_string(exact_ok * f));
    setup.csv.row(row);
  }
  std::printf("\nexpected shape: devi <= sp2 <= ... <= sp10 <= exact, all "
              "declining with U.\n");
  return 0;
}
