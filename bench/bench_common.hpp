/// \file bench_common.hpp
/// Shared plumbing for the figure/table benches: seeded flags, CSV
/// emission, a consistent header format so EXPERIMENTS.md can quote
/// outputs verbatim, and a minimal JSON emitter for machine-readable
/// artifacts (BENCH_*.json — see bench/perf_suite.cpp for the schema
/// and the CI regression gate that consumes it).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/random.hpp"

namespace edfkit::bench {

/// Streaming JSON writer with automatic comma management — enough for
/// flat benchmark reports (objects, arrays, string/number/bool values),
/// with no dependency. Keys are emitted verbatim (callers use literals).
class JsonEmitter {
 public:
  JsonEmitter() { begin('{', '}'); }

  JsonEmitter& key(const char* k) {
    comma();
    os_ << '"' << k << "\":";
    pending_value_ = true;
    return *this;
  }
  JsonEmitter& value(double v) {
    comma();
    // Round-trippable, locale-independent formatting.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << buf;
    return *this;
  }
  JsonEmitter& value(long long v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonEmitter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonEmitter& value(const char* v) {
    comma();
    os_ << '"';
    for (const char* p = v; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') os_ << '\\';
      os_ << *p;
    }
    os_ << '"';
    return *this;
  }

  JsonEmitter& kv(const char* k, double v) { return key(k).value(v); }
  JsonEmitter& kv(const char* k, long long v) { return key(k).value(v); }
  JsonEmitter& kv(const char* k, bool v) { return key(k).value(v); }
  JsonEmitter& kv(const char* k, const char* v) { return key(k).value(v); }

  JsonEmitter& begin_object(const char* k = nullptr) {
    if (k != nullptr) key(k);
    comma();
    begin('{', '}');
    return *this;
  }
  JsonEmitter& begin_array(const char* k = nullptr) {
    if (k != nullptr) key(k);
    comma();
    begin('[', ']');
    return *this;
  }
  JsonEmitter& end() {
    os_ << stack_.back();
    stack_.pop_back();
    first_.pop_back();
    return *this;
  }

  /// Close every open scope and return the document.
  [[nodiscard]] std::string str() {
    while (!stack_.empty()) end();
    return os_.str();
  }

  /// str() to a file; returns false on I/O failure.
  bool write(const std::string& path) {
    std::ofstream f(path);
    f << str() << "\n";
    return static_cast<bool>(f);
  }

 private:
  void begin(char open, char close) {
    os_ << open;
    stack_.push_back(close);
    first_.push_back(true);
    pending_value_ = false;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // the value completing a "key": pair — no comma
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
  }

  std::ostringstream os_;
  std::vector<char> stack_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

/// Pull one numeric field out of a (previously emitted) flat JSON
/// document: scans for `"key":` after the position of `section` and
/// parses the number that follows. Good enough to read back our own
/// BENCH_*.json baselines without a JSON dependency; returns `fallback`
/// when absent.
[[nodiscard]] inline double json_number_after(const std::string& doc,
                                              const std::string& section,
                                              const std::string& key,
                                              double fallback) {
  std::size_t from = 0;
  if (!section.empty()) {
    from = doc.find("\"" + section + "\"");
    if (from == std::string::npos) return fallback;
  }
  const std::size_t at = doc.find("\"" + key + "\":", from);
  if (at == std::string::npos) return fallback;
  const char* p = doc.c_str() + at + key.size() + 3;
  char* endp = nullptr;
  const double v = std::strtod(p, &endp);
  return endp == p ? fallback : v;
}

struct BenchSetup {
  std::int64_t sets;      ///< samples per sweep point
  std::uint64_t seed;
  CsvWriter csv;          ///< active iff --csv given

  BenchSetup(const CliFlags& flags, std::int64_t default_sets)
      : sets(flags.get_int_env("sets", "EDFKIT_SETS", default_sets)),
        seed(static_cast<std::uint64_t>(flags.get_int("seed", 20050307))),
        csv(flags.has("csv") ? CsvWriter(flags.get("csv", "bench.csv"))
                             : CsvWriter()) {}
};

inline void banner(const char* what, const char* paper_ref,
                   const BenchSetup& s) {
  std::printf("== %s ==\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("samples per point: %lld (override: --sets N or EDFKIT_SETS)\n",
              static_cast<long long>(s.sets));
  std::printf("seed: %llu\n\n", static_cast<unsigned long long>(s.seed));
}

}  // namespace edfkit::bench
