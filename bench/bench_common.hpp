/// \file bench_common.hpp
/// Shared plumbing for the figure/table benches: seeded flags, CSV
/// emission, and a consistent header format so EXPERIMENTS.md can quote
/// outputs verbatim.
#pragma once

#include <cstdio>
#include <string>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/random.hpp"

namespace edfkit::bench {

struct BenchSetup {
  std::int64_t sets;      ///< samples per sweep point
  std::uint64_t seed;
  CsvWriter csv;          ///< active iff --csv given

  BenchSetup(const CliFlags& flags, std::int64_t default_sets)
      : sets(flags.get_int_env("sets", "EDFKIT_SETS", default_sets)),
        seed(static_cast<std::uint64_t>(flags.get_int("seed", 20050307))),
        csv(flags.has("csv") ? CsvWriter(flags.get("csv", "bench.csv"))
                             : CsvWriter()) {}
};

inline void banner(const char* what, const char* paper_ref,
                   const BenchSetup& s) {
  std::printf("== %s ==\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("samples per point: %lld (override: --sets N or EDFKIT_SETS)\n",
              static_cast<long long>(s.sets));
  std::printf("seed: %llu\n\n", static_cast<unsigned long long>(s.seed));
}

}  // namespace edfkit::bench
