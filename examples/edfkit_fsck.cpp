/// \file edfkit_fsck.cpp
/// Offline deep verifier for an admission data directory — the
/// operator's answer to "is this snapshot/journal pair actually
/// recoverable, and does it decide what it claims?" before pointing a
/// server (or a replication re-seed) at it.
///
///   ./edfkit_fsck --data-dir DIR [--tenant NAME] [--verbose]
///
/// For every tenant (each <name>.snap / <name>.wal / <name>.dedup
/// group under DIR; --tenant restricts to one):
///
///   1. container walk — every snapshot section, every journal record
///      frame, and every dedup sidecar section is CRC-verified byte by
///      byte (a torn journal tail is reported, not an error: that is a
///      crash artifact the recovery path drops by design).
///   2. coherence — the snapshot's journal LSN must sit inside the
///      journal's [base_lsn, end) window (a snapshot older than the
///      journal's GC cut cannot be composed with it).
///   3. replay — full recover() (snapshot + journal suffix) through
///      the normal admission entry points, then verify_consistency()
///      and an exact from-scratch feasibility re-check of the resident
///      set (TestKind::ProcessorDemand).
///   4. round-trip digest — the recovered controller is re-serialized
///      through the snapshot codec, loaded back, and the two store
///      digests (admission/snapshot.hpp store_digest) must be equal:
///      what was read is exactly what would be written.
///   5. cold-replay differential — when the journal was never rotated
///      (base_lsn == 0, full history on disk) the journal alone is
///      replayed into a second controller and its digest must equal
///      the composed recovery's: snapshot and journal tell the same
///      story.
///
/// Exit codes are typed so harnesses can gate on the failure class:
///   0  every check passed
///   2  usage error
///   3  data directory missing or holds no tenant artifacts
///   4  CRC/framing corruption (snapshot, journal, or dedup sidecar)
///   5  replay or consistency failure (recovery threw, the recovered
///      store is inconsistent, or snapshot/journal are incoherent)
///   6  digest mismatch (round-trip or cold-replay differential)
#include <cstdio>
#include <exception>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "admission/controller.hpp"
#include "admission/snapshot.hpp"
#include "persist/format.hpp"
#include "persist/journal.hpp"
#include "util/cli.hpp"

namespace {

using namespace edfkit;

// Mirrors net/tenant.cpp's dedup sidecar layout (a deliberate copy:
// fsck must keep decoding old sidecars even if the server evolves).
constexpr std::uint32_t kSecDedupMeta = 1;
constexpr std::uint32_t kSecDedupSessions = 2;

/// Worst failure class seen so far; corruption outranks replay
/// failures outranks digest mismatches (an operator fixes the most
/// fundamental problem first).
struct Verdicts {
  bool corrupt = false;   // exit 4
  bool replay = false;    // exit 5
  bool digest = false;    // exit 6
  [[nodiscard]] int exit_code() const {
    if (corrupt) return 4;
    if (replay) return 5;
    if (digest) return 6;
    return 0;
  }
};

struct TenantPaths {
  std::string snap;
  std::string wal;
  std::string dedup;
};

void fail(Verdicts& v, bool Verdicts::*cls, const std::string& tenant,
          const std::string& what) {
  v.*cls = true;
  std::fprintf(stderr, "fsck %s: %s\n", tenant.c_str(), what.c_str());
}

/// CRC-walk + decode the dedup sidecar; returns the session count.
std::uint64_t check_dedup(const std::string& path) {
  const persist::SectionReader sr(persist::read_file(path));
  try {
    ByteReader meta = sr.section(kSecDedupMeta);
    (void)meta.u64();  // journal LSN at save time
    const std::uint64_t sessions = meta.u64();
    ByteReader body = sr.section(kSecDedupSessions);
    for (std::uint64_t s = 0; s < sessions; ++s) {
      (void)body.str();  // client id
      (void)body.u64();  // highest_applied
      const std::uint32_t window = body.u32();
      for (std::uint32_t w = 0; w < window; ++w) {
        (void)body.u64();  // request id
        const std::uint32_t len = body.u32();
        for (std::uint32_t b = 0; b < len; ++b) {
          (void)body.u8();  // cached encoded response byte
        }
      }
    }
    return sessions;
  } catch (const std::out_of_range&) {
    throw persist::PersistError(persist::PersistErrc::Truncated, path);
  }
}

void check_tenant(const std::string& tenant, const TenantPaths& p,
                  bool verbose, Verdicts& v) {
  // 1a. Snapshot container walk. SectionReader's constructor verifies
  // every section CRC; the meta decode checks the kind tag.
  std::uint64_t snap_lsn = 0;
  bool have_snap = false;
  if (!p.snap.empty()) {
    try {
      const SnapshotMeta meta =
          read_snapshot_meta(persist::read_file(p.snap));
      snap_lsn = meta.journal_lsn;
      have_snap = true;
      if (verbose) {
        std::printf("  %s: snapshot ok, lsn=%llu\n", tenant.c_str(),
                    static_cast<unsigned long long>(snap_lsn));
      }
    } catch (const persist::PersistError& e) {
      fail(v, &Verdicts::corrupt, tenant,
           std::string("snapshot: ") + e.what());
      return;  // nothing downstream is meaningful
    }
  }

  // 1b. Journal frame walk. scan_journal CRC-checks every record;
  // BadCrc here is bit rot, a torn tail is a dropped crash artifact.
  persist::JournalScan scan;
  bool have_wal = false;
  if (!p.wal.empty()) {
    try {
      scan = persist::scan_journal(p.wal);
      have_wal = true;
      if (scan.torn_tail) {
        std::printf("  %s: journal has a torn tail (dropped, "
                    "%llu intact records survive)\n",
                    tenant.c_str(),
                    static_cast<unsigned long long>(scan.records.size()));
      }
      if (verbose) {
        std::printf("  %s: journal ok, [%llu, %llu)\n", tenant.c_str(),
                    static_cast<unsigned long long>(scan.base_lsn),
                    static_cast<unsigned long long>(scan.base_lsn +
                                                    scan.records.size()));
      }
    } catch (const persist::PersistError& e) {
      fail(v, &Verdicts::corrupt, tenant,
           std::string("journal: ") + e.what());
      return;
    }
  }
  if (!have_snap && !have_wal) return;  // dedup-only stray; checked below

  // 2. Coherence: recovery replays [snap_lsn, end) — a snapshot below
  // the journal's GC cut leaves a gap no replay can fill.
  if (have_snap && have_wal && snap_lsn < scan.base_lsn) {
    fail(v, &Verdicts::replay, tenant,
         "snapshot lsn " + std::to_string(snap_lsn) +
             " below journal base " + std::to_string(scan.base_lsn) +
             " — rotated past its snapshot");
    return;
  }

  // 3. Full recovery through the normal entry points, then the exact
  // consistency + feasibility re-checks.
  AdmissionController recovered{AdmissionOptions{}};
  RecoveryResult rr;
  try {
    rr = recover(recovered, p.snap, p.wal);
  } catch (const persist::PersistError& e) {
    fail(v, &Verdicts::replay, tenant,
         std::string("recovery: ") + e.what());
    return;
  } catch (const std::exception& e) {
    fail(v, &Verdicts::replay, tenant,
         std::string("replay: ") + e.what());
    return;
  }
  if (!recovered.verify_consistency()) {
    fail(v, &Verdicts::replay, tenant,
         "recovered store fails verify_consistency()");
    return;
  }
  const StoreHeader hdr = recovered.demand_header();
  const FeasibilityResult feas =
      recovered.analyze_resident(TestKind::ProcessorDemand);
  if (hdr.residents > 0 && !feas.feasible()) {
    fail(v, &Verdicts::replay, tenant,
         "recovered resident set fails the exact feasibility re-check");
    return;
  }

  // 4. Round-trip digest: serialize the recovered controller, load it
  // back, compare store digests.
  const std::uint32_t recovered_digest = store_digest(recovered);
  try {
    AdmissionController reloaded{AdmissionOptions{}};
    (void)load_snapshot_bytes(
        reloaded, encode_snapshot(recovered, rr.snapshot_lsn + rr.replayed));
    if (store_digest(reloaded) != recovered_digest) {
      fail(v, &Verdicts::digest, tenant,
           "round-trip digest mismatch (reload of the re-serialized "
           "store decides differently)");
      return;
    }
  } catch (const persist::PersistError& e) {
    fail(v, &Verdicts::digest, tenant,
         std::string("round-trip: ") + e.what());
    return;
  }

  // 5. Cold-replay differential, when the full history is on disk.
  if (have_wal && scan.base_lsn == 0) {
    try {
      AdmissionController cold{AdmissionOptions{}};
      (void)recover(cold, "", p.wal);
      if (store_digest(cold) != recovered_digest) {
        fail(v, &Verdicts::digest, tenant,
             "cold journal replay diverges from snapshot+suffix "
             "recovery");
        return;
      }
    } catch (const persist::PersistError& e) {
      fail(v, &Verdicts::replay, tenant,
           std::string("cold replay: ") + e.what());
      return;
    }
  }

  // Dedup sidecar walk (independent of the store checks).
  std::uint64_t sessions = 0;
  if (!p.dedup.empty()) {
    try {
      sessions = check_dedup(p.dedup);
    } catch (const persist::PersistError& e) {
      fail(v, &Verdicts::corrupt, tenant,
           std::string("dedup sidecar: ") + e.what());
      return;
    }
  }

  std::printf("tenant %s: ok — residents=%llu journal=[%llu, %llu) "
              "replayed=%llu digest=%08x sessions=%llu%s\n",
              tenant.c_str(),
              static_cast<unsigned long long>(hdr.residents),
              static_cast<unsigned long long>(scan.base_lsn),
              static_cast<unsigned long long>(scan.base_lsn +
                                              scan.records.size()),
              static_cast<unsigned long long>(rr.replayed),
              recovered_digest,
              static_cast<unsigned long long>(sessions),
              rr.torn_tail ? " (torn tail dropped)" : "");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const std::string dir = flags.get("data-dir", "");
    const std::string only = flags.get("tenant", "");
    const bool verbose = flags.get_bool("verbose", false);
    if (dir.empty()) {
      std::fprintf(stderr,
                   "usage: edfkit_fsck --data-dir DIR [--tenant NAME] "
                   "[--verbose]\n");
      return 2;
    }
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
      std::fprintf(stderr, "fsck: %s is not a directory\n", dir.c_str());
      return 3;
    }

    // Group artifacts by tenant stem.
    std::map<std::string, TenantPaths> tenants;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::filesystem::path& path = entry.path();
      const std::string stem = path.stem().string();
      const std::string ext = path.extension().string();
      if (!only.empty() && stem != only) continue;
      if (ext == ".snap") {
        tenants[stem].snap = path.string();
      } else if (ext == ".wal") {
        tenants[stem].wal = path.string();
      } else if (ext == ".dedup") {
        tenants[stem].dedup = path.string();
      }
    }
    if (tenants.empty()) {
      std::fprintf(stderr, "fsck: no tenant artifacts under %s%s\n",
                   dir.c_str(),
                   only.empty() ? "" : (" for tenant " + only).c_str());
      return 3;
    }

    Verdicts v;
    for (const auto& [tenant, paths] : tenants) {
      check_tenant(tenant, paths, verbose, v);
    }
    if (v.exit_code() == 0) {
      std::printf("fsck: %zu tenant(s) verified, all checks passed\n",
                  tenants.size());
    }
    return v.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fsck error: %s\n", e.what());
    return 2;
  }
}
