/// \file quickstart.cpp
/// edfkit in five minutes: build a task set, run every feasibility test
/// through the unified query API, and read the instrumented results —
/// including a machine-checkable certificate verified independently.
///
///   ./quickstart [path/to/taskset.txt]
///
/// Without an argument a small demonstration set is used.
#include <cstdio>
#include <exception>
#include <string>

#include "analysis/bounds.hpp"
#include "model/io.hpp"
#include "model/task_set.hpp"
#include "query/query.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  try {
    TaskSet ts;
    if (argc > 1) {
      ts = load_task_set(argv[1]);
      std::printf("loaded %zu tasks from %s\n", ts.size(), argv[1]);
    } else {
      // A ten-task set around 95 %% utilization: hard for sufficient
      // tests, easy for the paper's new exact tests.
      ts = parse_task_set(R"(
        task video    2   8   20
        task audio    3  25   30
        task control  4  40   50
        task sensor   6  60   70
        task fusion   9  90  100
        task plan    14 140  150
        task log     20 190  200
        task net     30 290  300
        task disk    46 390  400
        task ui      72 580  600
      )");
      std::printf("using the built-in demo set (n=%zu)\n", ts.size());
    }

    std::printf("utilization U = %s (~%.4f)\n",
                ts.utilization().to_string().c_str(),
                ts.utilization_double());
    std::printf("feasibility bound (min of Baruah/George/superposition): "
                "%lld\n\n",
                static_cast<long long>(default_test_bound(ts)));

    // One-call comparison across every registered backend.
    std::printf("%s\n", comparison_table(Workload::periodic(ts)).c_str());

    // Programmatic use: query the paper's all-approximated exact test.
    // Exact decisive outcomes carry a machine-checkable certificate.
    const Outcome out =
        Query::single(TestKind::AllApprox).run(Workload::periodic(ts));
    std::printf("all-approx outcome: %s\n", out.to_string().c_str());
    if (out.certificate.present()) {
      const CertificateCheck check = verify(ts, out.certificate);
      std::printf("independent certificate check: %s (%llu points)\n",
                  check.valid ? "VALID" : check.reason.c_str(),
                  static_cast<unsigned long long>(check.points_checked));
    }
    return out.infeasible() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
