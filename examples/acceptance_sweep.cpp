/// \file acceptance_sweep.cpp
/// Mini replica of paper Fig. 1 as an example: sweep utilization and
/// print the acceptance rate of Devi, SuperPos(x) and the exact test on
/// randomly generated task sets.
///
///   ./acceptance_sweep [--sets N] [--seed S]
#include <cstdio>
#include <vector>

#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "core/superpos.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  const CliFlags flags(argc, argv);
  const int sets = static_cast<int>(flags.get_int("sets", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  std::printf("%6s %8s %8s %8s %8s %8s\n", "U(%)", "devi", "sp2", "sp4",
              "sp8", "exact");
  for (int u10 = 80; u10 <= 99; u10 += 3) {
    const double u = static_cast<double>(u10) / 100.0;
    Rng rng(seed + static_cast<std::uint64_t>(u10));
    int devi_ok = 0, sp2_ok = 0, sp4_ok = 0, sp8_ok = 0, exact_ok = 0;
    for (int i = 0; i < sets; ++i) {
      const TaskSet ts = draw_fig1_set(rng, u);
      if (devi_test(ts).feasible()) ++devi_ok;
      if (superpos_test(ts, 2).feasible()) ++sp2_ok;
      if (superpos_test(ts, 4).feasible()) ++sp4_ok;
      if (superpos_test(ts, 8).feasible()) ++sp8_ok;
      if (processor_demand_test(ts).feasible()) ++exact_ok;
    }
    const double f = 100.0 / sets;
    std::printf("%6d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", u10,
                devi_ok * f, sp2_ok * f, sp4_ok * f, sp8_ok * f,
                exact_ok * f);
  }
  return 0;
}
