/// \file avionics_analysis.cpp
/// Domain walkthrough: schedulability sign-off for an avionics platform
/// (the Generic Avionics Platform flavour of paper Table 1).
///
/// Shows the workflow an integrator would follow:
///   1. load the platform task set,
///   2. try the cheap sufficient test (Devi),
///   3. fall back to the paper's exact all-approximated test,
///   4. ask "how much margin do we have?" by scaling WCETs until the
///      exact test flips — a design-space probe that is only practical
///      because the new tests are fast.
#include <cstdio>

#include "analysis/devi.hpp"
#include "core/all_approx.hpp"
#include "lit/literature.hpp"
#include "query/query.hpp"

namespace {

edfkit::TaskSet scale_wcets(const edfkit::TaskSet& ts, double factor) {
  edfkit::TaskSet out;
  for (const edfkit::Task& t : ts) {
    edfkit::Task s = t;
    s.wcet = std::max<edfkit::Time>(
        1, edfkit::round_to_time(factor * static_cast<double>(t.wcet), 1,
                                 t.deadline));
    out.add(std::move(s));
  }
  return out;
}

}  // namespace

int main() {
  using namespace edfkit;
  const lit::LiteratureSet gap = lit::gap_set();
  std::printf("=== %s: %zu tasks, U ~ %.4f ===\n", gap.name.c_str(),
              gap.tasks.size(), gap.tasks.utilization_double());
  std::printf("%s\n", gap.tasks.to_string().c_str());

  // Step 1: the cheap test.
  const FeasibilityResult devi = devi_test(gap.tasks);
  std::printf("Devi (sufficient): %s\n", devi.to_string().c_str());

  // Step 2: the exact test (cheap here too — that is the paper's point).
  const FeasibilityResult exact = all_approx_test(gap.tasks);
  std::printf("All-approximated (exact): %s\n\n", exact.to_string().c_str());

  // Step 3: WCET growth margin — how much uniform WCET inflation the
  // platform tolerates before EDF feasibility is lost.
  double lo = 1.0, hi = 4.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    const TaskSet scaled = scale_wcets(gap.tasks, mid);
    const bool ok = scaled.utilization().certainly_le(Time{1}) &&
                    all_approx_test(scaled).feasible();
    (ok ? lo : hi) = mid;
  }
  std::printf("WCET margin: feasibility holds up to ~%.3fx uniform WCET "
              "inflation\n",
              lo);

  // Step 4: per-test effort at the margin point.
  const TaskSet at_margin = scale_wcets(gap.tasks, lo);
  std::printf("\nEffort comparison at the margin (U ~ %.4f):\n%s\n",
              at_margin.utilization_double(),
              comparison_table(Workload::periodic(at_margin)).c_str());
  return 0;
}
