/// \file admission_client.cpp
/// Load driver and differential checker for the admission server
/// (examples/admission_server.cpp), speaking the binary wire protocol
/// through net::Client.
///
///   ./admission_client [--host 127.0.0.1] [--port 7433]
///                      [--mode load|replay|chaos]
///                      [--tenant bench] [--tenants 1]
///                      [--connections 2] [--events 2000] [--rate 0]
///                      [--seed N] [--utilization 0.9]
///                      [--group-probability 0.15]
///                      [--depart-probability 0.5]
///                      [--fsync none|record|interval]
///                      [--fsync-interval 64] [--fuse] [--certify]
///                      [--platform-m 1]
///                      [--epsilon 0.1] [--skip-exact]
///                      [--gate-p99-us 0] [--expect-no-shed]
///                      [--client chaos] [--retry-timeout-ms 1000]
///                      [--retry-attempts 50]
///                      [--failover-to HOST:PORT[,HOST:PORT...]]
///
/// `--mode load` — open-loop benchmark: each connection (one thread
/// each) replays its own deterministic churn trace (gen/scenario §5
/// workload) over the socket, paced so the fleet offers --rate events
/// per second total (0 = as fast as the server answers). Send times
/// follow the schedule, not the responses: a slow answer does not slow
/// the offered load, it shows up as latency (open-loop with catch-up).
/// The run reports per-request latency p50/p99/p999, the decision mix
/// (admitted/rejected/shed), and throughput; --gate-p99-us and
/// --expect-no-shed turn the report into a CI gate (exit 1 on breach).
///
/// `--mode replay` — the end-to-end differential: one connection
/// replays a churn trace over the socket while an in-process twin
/// AdmissionController (same options, same trace) replays it locally,
/// comparing every decision — admitted, TaskIds, settling rung,
/// verdict, removal counts — and the final STATS header (epoch
/// excluded: recovery restarts epochs) plus stats JSON. Any divergence
/// prints both sides and exits 1. Because controller replay is
/// bit-identical, this holds even when the server is killed and
/// restarted (with --data-dir) mid-trace: client ids stay valid across
/// the reconnect. With --certify, every admit response's certificate is
/// re-verified client-side against the twin's resident set — the
/// client checks the server's proof without trusting the server.
///
/// `--mode chaos` — the replay differential through a RetryingClient
/// (net/client.hpp) with a stable client id: every transport failure —
/// dropped responses (fault-injected or real), connection resets,
/// server kills and restarts, tenant quarantines — is retried under
/// the original request id, and the server's exactly-once dedup window
/// answers resends from the applied result. The twin comparison is the
/// same as replay, so the gate it proves is stronger: decisions stay
/// bit-identical even when the harness is actively killing the server
/// (the chaos CI job runs exactly this under an EDFKIT_FAULTS matrix
/// plus a kill -9 loop). --retry-timeout-ms bounds each attempt's
/// receive wait; the final line reports retries / reconnects /
/// observed restarts for the harness to reconcile against server
/// metrics.
///
/// With --failover-to, chaos mode is also the failover differential:
/// the RetryingClient walks the endpoint list when the primary dies,
/// and because replication acks are asynchronous (src/repl/shipper.hpp)
/// the driver keeps a sliding window of acked (id, request, response)
/// triples — on every reconnect it compares the endpoint's
/// highest_applied watermark against its own last acked id and
/// re-drives the gap under the original ids, in order, before the
/// in-flight request (RetryingClient's on_reconnect hook guarantees
/// the ordering). Each re-driven answer must match the answer the dead
/// primary gave — determinism makes that exact — so the run proves
/// zero lost acked ops and zero double-applies across a kill -9 +
/// promote.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "admission/controller.hpp"
#include "admission/replay.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "query/certificate.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"

namespace {

using namespace edfkit;
using Clock = std::chrono::steady_clock;

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7433;
  std::string tenant = "bench";
  std::size_t tenants = 1;
  std::size_t connections = 2;
  std::uint64_t seed = 20050307;
  double rate = 0.0;  ///< total events/sec across connections; 0 = max
  persist::FsyncPolicy fsync = persist::FsyncPolicy::None;
  std::uint64_t fsync_interval = 64;
  bool fuse = false;
  bool certify = false;
  /// HELLO platform_m: 1 = uniprocessor ladder, > 1 = global admission
  /// mode over m processors (protocol v2).
  std::uint32_t platform_m = 1;
  ChurnConfig churn;
  AdmissionOptions twin;  ///< replay-mode twin controller options
};

/// Parse a comma-separated HOST:PORT list (--failover-to).
std::vector<net::Endpoint> parse_endpoints(const std::string& spec) {
  std::vector<net::Endpoint> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string one = spec.substr(pos, comma - pos);
    const std::size_t colon = one.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= one.size()) {
      throw std::invalid_argument("--failover-to: expected HOST:PORT, got '" +
                                  one + "'");
    }
    const unsigned long port = std::stoul(one.substr(colon + 1));
    if (port == 0 || port > 65535) {
      throw std::invalid_argument("--failover-to: port out of range in '" +
                                  one + "'");
    }
    out.push_back({one.substr(0, colon), static_cast<std::uint16_t>(port)});
    pos = comma + 1;
  }
  return out;
}

persist::FsyncPolicy parse_fsync(const std::string& s) {
  if (s == "none") return persist::FsyncPolicy::None;
  if (s == "record") return persist::FsyncPolicy::EveryRecord;
  if (s == "interval") return persist::FsyncPolicy::EveryN;
  throw std::invalid_argument("unknown --fsync '" + s +
                              "' (none|record|interval)");
}

std::uint8_t hello_flags(const ClientConfig& cfg) {
  std::uint8_t flags = 0;
  if (cfg.fuse) flags |= net::kFlagBatchFuse;
  if (cfg.certify) flags |= net::kFlagCertifiedTenant;
  return flags;
}

net::NetRequest request_for(const TraceEvent& ev,
                            const std::vector<TaskId>& depart_ids,
                            bool want_certificate) {
  net::NetRequest req;
  switch (ev.op) {
    case TraceOp::Arrive:
      req.hdr.op = static_cast<std::uint8_t>(net::NetOp::Admit);
      req.task = ev.task;
      if (want_certificate) req.hdr.flags |= net::kFlagWantCertificate;
      break;
    case TraceOp::ArriveGroup:
      req.hdr.op = static_cast<std::uint8_t>(net::NetOp::AdmitGroup);
      req.group = ev.group;
      if (want_certificate) req.hdr.flags |= net::kFlagWantCertificate;
      break;
    case TraceOp::Depart:
      req.hdr.op = static_cast<std::uint8_t>(net::NetOp::RemoveGroup);
      req.ids = depart_ids;
      break;
    case TraceOp::Crash:
      break;  // not a wire op; callers skip it
  }
  return req;
}

// ------------------------------------------------------------- load

struct LoadResult {
  std::vector<std::uint64_t> latency_ns;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  bool failed = false;
  std::string error;
};

/// One connection's worth of open-loop load: replay `trace` over the
/// wire, pacing sends to `interval` (catch-up, never ahead of
/// schedule), recording one round-trip latency per event.
void run_load_connection(const ClientConfig& cfg, std::string tenant,
                         std::vector<TraceEvent> trace,
                         Clock::duration interval, LoadResult* out) {
  try {
    net::Client client = net::Client::connect(cfg.host, cfg.port);
    const net::NetResponse h =
        client.hello(tenant, cfg.fsync, cfg.fsync_interval,
                     hello_flags(cfg), "", cfg.platform_m);
    if (h.hdr.status != static_cast<std::uint8_t>(net::NetStatus::Ok)) {
      throw std::runtime_error(std::string("HELLO failed: ") +
                               net::to_string(
                                   static_cast<net::NetStatus>(h.hdr.status)));
    }

    std::unordered_map<std::uint64_t, std::vector<TaskId>> resident;
    out->latency_ns.reserve(trace.size());
    const Clock::time_point start = Clock::now();
    std::size_t sent = 0;
    for (const TraceEvent& ev : trace) {
      if (ev.op == TraceOp::Crash) continue;
      std::vector<TaskId> depart_ids;
      if (ev.op == TraceOp::Depart) {
        const auto it = resident.find(ev.key);
        if (it == resident.end()) continue;  // never admitted / gone
        depart_ids = std::move(it->second);
        resident.erase(it);
      }
      if (interval.count() > 0) {
        // Open-loop schedule: event k is *offered* at start + k*dt. If
        // we are behind (a slow response), send immediately — the
        // backlog is the server's latency problem, not a rate cut.
        std::this_thread::sleep_until(start + interval * sent);
      }
      ++sent;

      const Clock::time_point t0 = Clock::now();
      const net::NetResponse resp =
          client.call(request_for(ev, depart_ids, /*want_certificate=*/false));
      out->latency_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));

      switch (static_cast<net::NetStatus>(resp.hdr.status)) {
        case net::NetStatus::Ok:
          ++out->ok;
          if (ev.op == TraceOp::Arrive) {
            resident.emplace(ev.key, std::vector<TaskId>{resp.id});
          } else if (ev.op == TraceOp::ArriveGroup) {
            resident.emplace(ev.key, resp.ids);
          }
          break;
        case net::NetStatus::Rejected:
          ++out->rejected;
          break;
        case net::NetStatus::Shed:
          ++out->shed;
          break;
        default:
          ++out->errors;
          break;
      }
    }
  } catch (const std::exception& e) {
    out->failed = true;
    out->error = e.what();
  }
}

std::uint64_t percentile_ns(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int run_load(const ClientConfig& cfg, std::uint64_t gate_p99_us,
             bool expect_no_shed) {
  Rng rng(cfg.seed);
  std::vector<LoadResult> results(cfg.connections);
  const Clock::duration interval =
      cfg.rate > 0.0
          ? std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    static_cast<double>(cfg.connections) / cfg.rate))
          : Clock::duration::zero();

  const Clock::time_point start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(cfg.connections);
    for (std::size_t c = 0; c < cfg.connections; ++c) {
      Rng child = rng.fork();
      std::vector<TraceEvent> trace = generate_churn_trace(child, cfg.churn);
      std::string tenant =
          cfg.tenants <= 1
              ? cfg.tenant
              : cfg.tenant + "-" + std::to_string(c % cfg.tenants);
      threads.emplace_back(run_load_connection, std::cref(cfg),
                           std::move(tenant), std::move(trace), interval,
                           &results[c]);
    }
    for (std::thread& t : threads) t.join();
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<std::uint64_t> all;
  std::uint64_t ok = 0, rejected = 0, shed = 0, errors = 0;
  for (const LoadResult& r : results) {
    if (r.failed) {
      std::fprintf(stderr, "connection failed: %s\n", r.error.c_str());
      return 2;
    }
    all.insert(all.end(), r.latency_ns.begin(), r.latency_ns.end());
    ok += r.ok;
    rejected += r.rejected;
    shed += r.shed;
    errors += r.errors;
  }
  std::sort(all.begin(), all.end());

  const double us = 1e-3;
  const std::uint64_t p50 = percentile_ns(all, 0.50);
  const std::uint64_t p99 = percentile_ns(all, 0.99);
  const std::uint64_t p999 = percentile_ns(all, 0.999);
  std::printf("%zu connections x %zu events, %s\n", cfg.connections,
              cfg.churn.events,
              cfg.rate > 0.0
                  ? (std::to_string(cfg.rate) + " events/sec offered").c_str()
                  : "unpaced (closed-loop max)");
  std::printf("served %zu requests in %.3fs -> %.0f req/sec\n", all.size(),
              secs, static_cast<double>(all.size()) / secs);
  std::printf("latency: p50=%.1fus p99=%.1fus p999=%.1fus max=%.1fus\n",
              static_cast<double>(p50) * us, static_cast<double>(p99) * us,
              static_cast<double>(p999) * us,
              all.empty() ? 0.0 : static_cast<double>(all.back()) * us);
  std::printf("decisions: ok=%llu rejected=%llu shed=%llu errors=%llu\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(errors));

  bool pass = errors == 0;
  if (gate_p99_us != 0 && p99 > gate_p99_us * 1000) {
    std::fprintf(stderr, "GATE: p99 %.1fus exceeds --gate-p99-us %llu\n",
                 static_cast<double>(p99) * us,
                 static_cast<unsigned long long>(gate_p99_us));
    pass = false;
  }
  if (expect_no_shed && shed != 0) {
    std::fprintf(stderr,
                 "GATE: %llu requests shed under --expect-no-shed\n",
                 static_cast<unsigned long long>(shed));
    pass = false;
  }
  return pass ? 0 : 1;
}

// ----------------------------------------------------------- replay

/// Reconnect loop for the kill+recover differential: the server may be
/// down for a moment between SIGTERM and restart.
net::Client connect_with_retry(const ClientConfig& cfg, int budget_ms) {
  for (int waited = 0;; waited += 50) {
    try {
      return net::Client::connect(cfg.host, cfg.port);
    } catch (const std::exception&) {
      if (waited >= budget_ms) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

int run_replay(const ClientConfig& cfg) {
  Rng rng(cfg.seed);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, cfg.churn);

  AdmissionOptions twin_opts = cfg.twin;
  twin_opts.return_certificate = cfg.certify;
  AdmissionController twin(twin_opts);

  net::Client client = connect_with_retry(cfg, /*budget_ms=*/5000);
  net::NetResponse h =
      client.hello(cfg.tenant, cfg.fsync, cfg.fsync_interval,
                   // Fusing would change the journal/decision shape; the
                   // differential needs the sequential one.
                   hello_flags(cfg) & ~net::kFlagBatchFuse, "",
                   cfg.platform_m);
  if (h.hdr.status != static_cast<std::uint8_t>(net::NetStatus::Ok)) {
    std::fprintf(stderr, "HELLO failed: %s\n",
                 net::to_string(static_cast<net::NetStatus>(h.hdr.status)));
    return 2;
  }

  std::unordered_map<std::uint64_t, std::vector<TaskId>> wire_resident;
  std::unordered_map<std::uint64_t, std::vector<TaskId>> twin_resident;
  std::uint64_t mismatches = 0;
  std::uint64_t verified = 0;
  const auto diverge = [&](std::size_t i, const std::string& what) {
    std::fprintf(stderr, "DIVERGENCE at event %zu: %s\n", i, what.c_str());
    ++mismatches;
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& ev = trace[i];
    if (ev.op == TraceOp::Crash) continue;

    std::vector<TaskId> depart_ids;
    if (ev.op == TraceOp::Depart) {
      const auto it = wire_resident.find(ev.key);
      if (it == wire_resident.end()) {
        if (twin_resident.count(ev.key) != 0) {
          diverge(i, "key resident in twin but not over the wire");
        }
        continue;
      }
      depart_ids = std::move(it->second);
      wire_resident.erase(it);
    }

    // The wire side. If the server went away (kill+recover harness),
    // reconnect, re-HELLO the same tenant — which recovers it from its
    // snapshot + journal — and resend this event: nothing of it was
    // served (the differential harness only kills between round trips).
    net::NetResponse resp;
    try {
      resp = client.call(request_for(ev, depart_ids, cfg.certify));
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "event %zu: connection lost (%s); reconnecting\n", i,
                   e.what());
      client = connect_with_retry(cfg, /*budget_ms=*/10000);
      h = client.hello(cfg.tenant, cfg.fsync, cfg.fsync_interval,
                       hello_flags(cfg) & ~net::kFlagBatchFuse, "",
                       cfg.platform_m);
      if (h.hdr.status != static_cast<std::uint8_t>(net::NetStatus::Ok)) {
        std::fprintf(stderr, "re-HELLO failed\n");
        return 2;
      }
      std::printf("reconnected: tenant journal [%llu, %llu)\n",
                  static_cast<unsigned long long>(h.base_lsn),
                  static_cast<unsigned long long>(h.lsn));
      resp = client.call(request_for(ev, depart_ids, cfg.certify));
    }
    const auto status = static_cast<net::NetStatus>(resp.hdr.status);
    if (status != net::NetStatus::Ok && status != net::NetStatus::Rejected) {
      diverge(i, std::string("unexpected status ") + net::to_string(status));
      continue;
    }
    const bool wire_admitted = status == net::NetStatus::Ok;

    // The in-process twin, and the comparison.
    switch (ev.op) {
      case TraceOp::Arrive: {
        const AdmissionDecision d = twin.try_admit(ev.task);
        if (d.admitted != wire_admitted) {
          diverge(i, "admit verdicts differ");
        } else if (d.admitted && d.id != resp.id) {
          diverge(i, "admitted TaskIds differ");
        }
        if (static_cast<std::uint8_t>(d.rung) != resp.rung) {
          diverge(i, "settling rungs differ");
        }
        if (static_cast<std::uint8_t>(d.analysis.verdict) != resp.verdict) {
          diverge(i, "verdicts differ");
        }
        if (d.admitted) {
          wire_resident.emplace(ev.key, std::vector<TaskId>{resp.id});
          twin_resident.emplace(ev.key, std::vector<TaskId>{d.id});
        }
        if (cfg.certify &&
            (resp.hdr.flags & net::kFlagHasCertificate) != 0) {
          // Round-trip verification against *our* view of the set: the
          // twin's post-decision residents (plus the rejected task for
          // an infeasibility witness).
          TaskSet view = twin.snapshot();
          if (!d.admitted) view.add(ev.task);
          if (!verify(view, resp.certificate).valid) {
            diverge(i, "server certificate failed client-side verify()");
          } else {
            ++verified;
          }
        }
        break;
      }
      case TraceOp::ArriveGroup: {
        const GroupDecision d = twin.admit_group(ev.group);
        if (d.admitted != wire_admitted) {
          diverge(i, "group verdicts differ");
        } else if (d.admitted && d.ids != resp.ids) {
          diverge(i, "group TaskIds differ");
        }
        if (static_cast<std::uint8_t>(d.rung) != resp.rung) {
          diverge(i, "group settling rungs differ");
        }
        if (d.admitted) {
          wire_resident.emplace(ev.key, resp.ids);
          twin_resident.emplace(ev.key, d.ids);
        }
        if (cfg.certify &&
            (resp.hdr.flags & net::kFlagHasCertificate) != 0) {
          TaskSet view = twin.snapshot();
          if (!d.admitted) {
            for (const Task& t : ev.group) view.add(t);
          }
          if (!verify(view, resp.certificate).valid) {
            diverge(i, "group certificate failed client-side verify()");
          } else {
            ++verified;
          }
        }
        break;
      }
      case TraceOp::Depart: {
        const auto it = twin_resident.find(ev.key);
        std::size_t removed = 0;
        if (it != twin_resident.end()) {
          removed = twin.remove_group(it->second);
          twin_resident.erase(it);
        }
        if (removed != resp.removed) diverge(i, "removal counts differ");
        break;
      }
      case TraceOp::Crash:
        break;
    }
  }

  // Final-state differential: the server's wait-free header and stats
  // against the twin's. Epoch is excluded — recovery (and the tenant's
  // own checkpoint cycles) restart epochs without changing state.
  net::NetRequest stats_req;
  stats_req.hdr.op = static_cast<std::uint8_t>(net::NetOp::Stats);
  const net::NetResponse stats = client.call(std::move(stats_req));
  const StoreHeader a = stats.stats;
  const StoreHeader b = twin.demand_header();
  if (a.residents != b.residents || a.constrained != b.constrained ||
      a.live_checkpoints != b.live_checkpoints ||
      a.utilization != b.utilization || a.cert_ratio != b.cert_ratio) {
    std::fprintf(stderr,
                 "DIVERGENCE: final headers differ "
                 "(server %llu residents u=%.6f, twin %llu u=%.6f)\n",
                 static_cast<unsigned long long>(a.residents), a.utilization,
                 static_cast<unsigned long long>(b.residents), b.utilization);
    ++mismatches;
  }
  if (stats.stats_json != twin.stats().to_json()) {
    std::fprintf(stderr, "DIVERGENCE: stats json differs\nserver: %s\ntwin:   %s\n",
                 stats.stats_json.c_str(), twin.stats().to_json().c_str());
    ++mismatches;
  }

  std::printf("replay differential: %zu events, %llu residents, "
              "%llu certificates verified, %llu mismatches\n",
              trace.size(),
              static_cast<unsigned long long>(b.residents),
              static_cast<unsigned long long>(verified),
              static_cast<unsigned long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}

// ------------------------------------------------------------ chaos

/// The replay differential driven through RetryingClient: transport
/// failures, drops, restarts, and quarantines are absorbed by the
/// exactly-once retry path instead of the manual reconnect above, so
/// the comparison loop itself never sees them — only the counters do.
int run_chaos(const ClientConfig& cfg, const std::string& client_id,
              std::uint64_t retry_timeout_ms, std::size_t retry_attempts,
              const std::vector<net::Endpoint>& standbys) {
  Rng rng(cfg.seed);
  const std::vector<TraceEvent> trace = generate_churn_trace(rng, cfg.churn);

  AdmissionController twin(cfg.twin);

  net::RetryPolicy policy;
  policy.receive_timeout_ms = retry_timeout_ms;
  policy.send_timeout_ms = retry_timeout_ms;
  policy.connect_timeout_ms = retry_timeout_ms;
  policy.max_attempts = retry_attempts;
  policy.seed = cfg.seed;  // deterministic jitter for reproducible runs
  std::vector<net::Endpoint> endpoints{{cfg.host, cfg.port}};
  endpoints.insert(endpoints.end(), standbys.begin(), standbys.end());
  // Fusing would change the journal/decision shape, and fused batches
  // are excluded from dedup anyway — chaos runs sequential ops.
  net::RetryingClient rc(std::move(endpoints), cfg.tenant, client_id, policy,
                         cfg.fsync, cfg.fsync_interval,
                         hello_flags(cfg) & ~net::kFlagBatchFuse,
                         cfg.platform_m);

  std::unordered_map<std::uint64_t, std::vector<TaskId>> wire_resident;
  std::unordered_map<std::uint64_t, std::vector<TaskId>> twin_resident;
  std::uint64_t mismatches = 0;
  const auto diverge = [&](std::size_t i, const std::string& what) {
    std::fprintf(stderr, "DIVERGENCE at event %zu: %s\n", i, what.c_str());
    ++mismatches;
  };

  // Failover re-drive window: the last kRedriveWindow acked mutating
  // operations — id, the request as sent, the answer the server gave.
  // Asynchronous replication means a killed primary may have acked ops
  // the standby never received; the on_reconnect hook below re-sends
  // everything above the fresh endpoint's watermark under the original
  // ids (in order, ahead of the in-flight request) and checks that the
  // new endpoint gives the very same answers. Ids below the watermark
  // that we re-send anyway are answered from the dedup window, so the
  // hook is harmless on ordinary (same-server restart) reconnects.
  struct SentOp {
    std::uint64_t id = 0;
    net::NetRequest req;
    net::NetResponse expected;
  };
  constexpr std::size_t kRedriveWindow = 1024;
  std::deque<SentOp> window;
  std::uint64_t redriven = 0;
  std::uint64_t redrive_mismatches = 0;
  bool window_overrun = false;
  const auto responses_match = [](const net::NetResponse& a,
                                  const net::NetResponse& b) {
    return a.hdr.status == b.hdr.status && a.id == b.id && a.ids == b.ids &&
           a.rung == b.rung && a.verdict == b.verdict &&
           a.removed == b.removed;
  };
  rc.set_on_reconnect([&] {
    const std::uint64_t watermark = rc.highest_applied();
    if (window.empty() || window.back().id <= watermark) return;
    if (window.front().id > watermark + 1) window_overrun = true;
    for (const SentOp& op : window) {
      if (op.id <= watermark) continue;
      net::NetRequest copy = op.req;
      copy.hdr.request_id = op.id;
      const net::NetResponse got = rc.call(std::move(copy));
      ++redriven;
      if (!responses_match(op.expected, got)) {
        std::fprintf(stderr,
                     "DIVERGENCE: re-driven id %llu answered differently "
                     "after failover\n",
                     static_cast<unsigned long long>(op.id));
        ++redrive_mismatches;
      }
    }
  });

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& ev = trace[i];
    if (ev.op == TraceOp::Crash) continue;

    std::vector<TaskId> depart_ids;
    if (ev.op == TraceOp::Depart) {
      const auto it = wire_resident.find(ev.key);
      if (it == wire_resident.end()) {
        if (twin_resident.count(ev.key) != 0) {
          diverge(i, "key resident in twin but not over the wire");
        }
        continue;
      }
      depart_ids = std::move(it->second);
      wire_resident.erase(it);
    }

    // RetryingClient owns every failure mode here: a lost response is
    // resent under the same id and answered from the server's dedup
    // window, so the decision we compare is the one applied exactly
    // once — even across a kill -9 and journal recovery.
    const net::NetRequest req =
        request_for(ev, depart_ids, /*want_certificate=*/false);
    const net::NetResponse resp = rc.call(req);
    const auto status = static_cast<net::NetStatus>(resp.hdr.status);
    if (status == net::NetStatus::Ok || status == net::NetStatus::Rejected) {
      // An acked mutation: remember it for the failover re-drive.
      window.push_back({rc.last_request_id(), req, resp});
      if (window.size() > kRedriveWindow) window.pop_front();
    } else {
      diverge(i, std::string("unexpected status ") + net::to_string(status));
      continue;
    }
    const bool wire_admitted = status == net::NetStatus::Ok;

    switch (ev.op) {
      case TraceOp::Arrive: {
        const AdmissionDecision d = twin.try_admit(ev.task);
        if (d.admitted != wire_admitted) {
          diverge(i, "admit verdicts differ");
        } else if (d.admitted && d.id != resp.id) {
          diverge(i, "admitted TaskIds differ");
        }
        if (static_cast<std::uint8_t>(d.rung) != resp.rung) {
          diverge(i, "settling rungs differ");
        }
        if (static_cast<std::uint8_t>(d.analysis.verdict) != resp.verdict) {
          diverge(i, "verdicts differ");
        }
        if (d.admitted) {
          wire_resident.emplace(ev.key, std::vector<TaskId>{resp.id});
          twin_resident.emplace(ev.key, std::vector<TaskId>{d.id});
        }
        break;
      }
      case TraceOp::ArriveGroup: {
        const GroupDecision d = twin.admit_group(ev.group);
        if (d.admitted != wire_admitted) {
          diverge(i, "group verdicts differ");
        } else if (d.admitted && d.ids != resp.ids) {
          diverge(i, "group TaskIds differ");
        }
        if (static_cast<std::uint8_t>(d.rung) != resp.rung) {
          diverge(i, "group settling rungs differ");
        }
        if (d.admitted) {
          wire_resident.emplace(ev.key, resp.ids);
          twin_resident.emplace(ev.key, d.ids);
        }
        break;
      }
      case TraceOp::Depart: {
        const auto it = twin_resident.find(ev.key);
        std::size_t removed = 0;
        if (it != twin_resident.end()) {
          removed = twin.remove_group(it->second);
          twin_resident.erase(it);
        }
        if (removed != resp.removed) diverge(i, "removal counts differ");
        break;
      }
      case TraceOp::Crash:
        break;
    }
  }

  // Final-state differential, same shape as replay. Epoch is excluded
  // (restarts change it by design — epoch_changes() counts them).
  net::NetRequest stats_req;
  stats_req.hdr.op = static_cast<std::uint8_t>(net::NetOp::Stats);
  const net::NetResponse stats = rc.call(std::move(stats_req));
  const StoreHeader a = stats.stats;
  const StoreHeader b = twin.demand_header();
  if (a.residents != b.residents || a.constrained != b.constrained ||
      a.live_checkpoints != b.live_checkpoints ||
      a.utilization != b.utilization || a.cert_ratio != b.cert_ratio) {
    std::fprintf(stderr,
                 "DIVERGENCE: final headers differ "
                 "(server %llu residents u=%.6f, twin %llu u=%.6f)\n",
                 static_cast<unsigned long long>(a.residents), a.utilization,
                 static_cast<unsigned long long>(b.residents), b.utilization);
    ++mismatches;
  }
  if (stats.stats_json != twin.stats().to_json()) {
    std::fprintf(stderr,
                 "DIVERGENCE: stats json differs\nserver: %s\ntwin:   %s\n",
                 stats.stats_json.c_str(), twin.stats().to_json().c_str());
    ++mismatches;
  }

  if (window_overrun) {
    std::fprintf(stderr,
                 "GATE: acked operations fell off the %zu-entry re-drive "
                 "window before failover — ops lost\n",
                 kRedriveWindow);
  }
  std::printf("chaos differential: %zu events, %llu residents, "
              "%llu mismatches\n",
              trace.size(), static_cast<unsigned long long>(b.residents),
              static_cast<unsigned long long>(mismatches));
  std::printf("chaos transport: retries=%llu reconnects=%llu "
              "restarts-observed=%llu epoch=%llu failovers=%llu "
              "redriven=%llu redrive-mismatches=%llu\n",
              static_cast<unsigned long long>(rc.retries()),
              static_cast<unsigned long long>(rc.reconnects()),
              static_cast<unsigned long long>(rc.epoch_changes()),
              static_cast<unsigned long long>(rc.epoch()),
              static_cast<unsigned long long>(rc.failovers()),
              static_cast<unsigned long long>(redriven),
              static_cast<unsigned long long>(redrive_mismatches));
  return (mismatches == 0 && redrive_mismatches == 0 && !window_overrun)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);

    ClientConfig cfg;
    cfg.host = flags.get("host", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(flags.get_int("port", 7433));
    cfg.tenant = flags.get("tenant", "bench");
    cfg.tenants = static_cast<std::size_t>(flags.get_int("tenants", 1));
    cfg.connections =
        static_cast<std::size_t>(flags.get_int("connections", 2));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 20050307));
    cfg.rate = flags.get_double("rate", 0.0);
    cfg.fsync = parse_fsync(flags.get("fsync", "none"));
    cfg.fsync_interval =
        static_cast<std::uint64_t>(flags.get_int("fsync-interval", 64));
    cfg.fuse = flags.get_bool("fuse", false);
    cfg.certify = flags.get_bool("certify", false);
    cfg.platform_m =
        static_cast<std::uint32_t>(flags.get_int("platform-m", 1));

    cfg.churn.events = static_cast<std::size_t>(flags.get_int("events", 2000));
    cfg.churn.pool_utilization = flags.get_double("utilization", 0.9);
    cfg.churn.group_probability = flags.get_double("group-probability", 0.15);
    cfg.churn.depart_probability =
        flags.get_double("depart-probability", 0.5);

    cfg.twin.epsilon = flags.get_double("epsilon", 0.1);
    cfg.twin.skip_exact = flags.get_bool("skip-exact", false);
    // The differential twin mirrors the wire tenant's platform, so
    // replay/chaos compare global decisions against global decisions.
    cfg.twin.platform.m = cfg.platform_m;

    const std::string mode = flags.get("mode", "load");
    if (mode == "load") {
      return run_load(cfg,
                      static_cast<std::uint64_t>(
                          flags.get_int("gate-p99-us", 0)),
                      flags.get_bool("expect-no-shed", false));
    }
    if (mode == "replay") return run_replay(cfg);
    if (mode == "chaos") {
      const std::string failover_to = flags.get("failover-to", "");
      return run_chaos(
          cfg, flags.get("client", "chaos"),
          static_cast<std::uint64_t>(flags.get_int("retry-timeout-ms", 1000)),
          static_cast<std::size_t>(flags.get_int("retry-attempts", 50)),
          failover_to.empty() ? std::vector<net::Endpoint>{}
                              : parse_endpoints(failover_to));
    }
    throw std::invalid_argument("unknown --mode '" + mode +
                                "' (load|replay|chaos)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
