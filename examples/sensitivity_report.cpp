/// \file sensitivity_report.cpp
/// Design-space exploration with the fast exact tests: WCET margins,
/// minimum processor speed, per-task slack, deadline tightening, and the
/// effect of scheduler overhead / blocking — the workflows that become
/// interactive once an exact test costs as little as a sufficient one
/// (the paper's motivation, §1).
///
///   ./sensitivity_report [path/to/taskset.txt]
#include <cstdio>
#include <exception>
#include <vector>

#include "analysis/extensions.hpp"
#include "analysis/sensitivity.hpp"
#include "core/all_approx.hpp"
#include "demand/profile.hpp"
#include "model/io.hpp"

int main(int argc, char** argv) {
  using namespace edfkit;
  try {
    TaskSet ts;
    if (argc > 1) {
      ts = load_task_set(argv[1]);
    } else {
      ts = parse_task_set(R"(
        task ctl    2   9  10
        task io     5  35  40
        task dsp   11  70  80
        task gui   24 150 200
      )");
    }
    std::printf("task set (U ~ %.4f):\n%s\n", ts.utilization_double(),
                ts.to_string().c_str());

    const FeasibilityResult base = all_approx_test(ts);
    std::printf("exact verdict: %s\n\n", base.to_string().c_str());
    if (!base.feasible()) {
      std::printf("set infeasible; sensitivity questions need a feasible "
                  "baseline.\n");
      return 1;
    }

    // 1. Uniform WCET growth margin.
    if (const auto f = max_wcet_scaling(ts)) {
      std::printf("max uniform WCET scaling: %.4fx\n", f->to_double());
    }

    // 2. Minimum processor speed (exact rational).
    const Rational speed = min_processor_speed(ts);
    std::printf("minimum processor speed:  %s (~%.4f)\n",
                speed.to_string().c_str(), speed.to_double());

    // 3. Per-task WCET slack and deadline tightening headroom.
    std::printf("\n%-8s %12s %18s\n", "task", "wcet slack", "min deadline");
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const auto slack = task_wcet_slack(ts, i);
      const auto dmin = min_feasible_deadline(ts, i);
      std::printf("%-8s %12lld %18lld\n", ts[i].name.c_str(),
                  static_cast<long long>(slack.value_or(-1)),
                  static_cast<long long>(dmin.value_or(-1)));
    }

    // 4. Scheduler overhead tolerance: largest per-switch cost that
    // keeps the set schedulable.
    Time cs = 0;
    while (all_approx_test(with_context_switch_cost(ts, cs + 1)).feasible())
      ++cs;
    std::printf("\nmax context-switch cost: %lld per switch (2 per job)\n",
                static_cast<long long>(cs));

    // 5. Blocking tolerance: longest critical section the *least urgent*
    // task may hold against everyone else (SRP/EDF).
    std::vector<Time> critical(ts.size(), 0);
    std::size_t laziest = 0;
    for (std::size_t i = 1; i < ts.size(); ++i) {
      if (ts[i].deadline > ts[laziest].deadline) laziest = i;
    }
    Time block = 0;
    while (true) {
      critical[laziest] = block + 1;
      if (!srp_blocking_test(ts, critical).feasible()) break;
      ++block;
    }
    std::printf("max critical section of %s: %lld\n",
                ts[laziest].name.c_str(), static_cast<long long>(block));

    // 6. Demand profile for plotting (gnuplot: plot "out" u 1:2 w steps).
    const DemandProfile profile = sample_demand(ts, 2 * ts.max_deadline(), 3);
    std::printf("\ndemand profile (first rows; peak pressure %.3f):\n",
                profile.peak_pressure());
    const std::string text = format_profile(profile);
    std::fwrite(text.data(), 1, std::min<std::size_t>(text.size(), 400),
                stdout);
    std::printf("...\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
