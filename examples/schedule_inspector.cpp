/// \file schedule_inspector.cpp
/// Cross-checking analysis against execution: simulate the synchronous
/// EDF schedule of a small task set, print the Gantt chart, and confirm
/// the analytical verdicts match observed behaviour (including a
/// deliberately infeasible variant and its first miss).
#include <cstdio>

#include "analysis/bounds.hpp"
#include "model/io.hpp"
#include "query/query.hpp"
#include "sim/edf_sim.hpp"
#include "sim/oracle.hpp"

int main() {
  using namespace edfkit;
  TaskSet good = parse_task_set(R"(
    task a 2  6  8
    task b 3 10 12
    task c 4 20 24
  )");
  // U == 1 exactly, so the utilization precheck passes, yet the demand
  // in (0, 22] exceeds 22: EDF misses a deadline (first at t = 22).
  TaskSet bad = parse_task_set(R"(
    task a 3  4  8
    task b 5 10 12
    task c 5 16 24
  )");

  for (const auto* pair : {&good, &bad}) {
    const TaskSet& ts = *pair;
    std::printf("=== task set (U ~ %.3f) ===\n%s",
                ts.utilization_double(), ts.to_string().c_str());

    SimConfig sc;
    sc.horizon = hyperperiod_bound(ts);
    sc.record_trace = true;
    sc.stop_at_first_miss = false;
    const SimResult sim = simulate_edf(ts, sc);
    std::printf("simulated [0, %lld): released=%llu completed=%llu "
                "preemptions=%llu idle=%lld\n",
                static_cast<long long>(sc.horizon),
                static_cast<unsigned long long>(sim.released_jobs),
                static_cast<unsigned long long>(sim.completed_jobs),
                static_cast<unsigned long long>(sim.preemptions),
                static_cast<long long>(sim.idle_time));
    if (sim.deadline_missed) {
      std::printf("first deadline miss at t=%lld\n",
                  static_cast<long long>(sim.first_miss));
    } else {
      std::printf("no deadline miss in the hyperperiod window\n");
    }
    std::printf("%s", sim.trace.render_ascii(ts.size(), 48).c_str());

    const FeasibilityResult oracle = simulate_feasibility(ts);
    const Outcome exact =
        Query::single(TestKind::AllApprox).run(Workload::periodic(ts));
    std::printf("oracle: %s | all-approx: %s\n",
                oracle.to_string().c_str(),
                exact.analysis.to_string().c_str());
    // The analytical verdict ships with replayable evidence: a witness
    // interval for the miss, or per-task borders for the feasible set.
    std::printf("certificate %s: independently %s\n\n",
                exact.certificate.to_string().c_str(),
                verify(ts, exact.certificate).valid ? "verified" : "REJECTED");
  }
  return 0;
}
