/// \file event_stream_bursts.cpp
/// Event-stream modelling (paper §2/§3.6): describe bursty triggers with
/// Gresser event streams and feed them to the unified query API as a
/// first-class stream workload — the expansion to sporadic tasks happens
/// inside `Workload`, and the backend registry's capability flags decide
/// which tests run. Also shows the real-time-calculus 3-segment
/// approximation the paper discusses in §3.6.
#include <cstdio>
#include <vector>

#include "analysis/devi.hpp"
#include "core/all_approx.hpp"
#include "model/event_stream.hpp"
#include "query/query.hpp"
#include "rtc/arrival.hpp"
#include "rtc/curve.hpp"

int main() {
  using namespace edfkit;

  // An interrupt source fires in bursts: 4 events 5 ticks apart, the
  // pattern repeating every 200 ticks; each event needs C=8 within D=40.
  // Two periodic workers share the processor.
  std::vector<EventStreamTask> streams;
  streams.push_back(EventStreamTask{EventStream::bursty(200, 4, 5), 8, 40,
                                    "irq_burst"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(50), 11, 45, "worker_a"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(120), 30, 100, "worker_b"});

  const Workload workload = Workload::event_streams(streams);
  const TaskSet& ts = workload.tasks();
  std::printf("workload %s, expanded task set:\n%s\n",
              workload.to_string().c_str(), ts.to_string().c_str());

  std::printf("event bound of the burst stream over small windows:\n");
  const EventStream& burst = streams[0].stream;
  for (Time i : {0, 5, 10, 15, 100, 200, 400}) {
    std::printf("  eta(%3lld) = %lld\n", static_cast<long long>(i),
                static_cast<long long>(burst.eta(i)));
  }

  // Stream workloads are first-class query inputs: the ladder escalates
  // through the registry's stream-capable backends (liu-layland is
  // filtered out by its capability flags) and certifies the verdict.
  const Outcome ladder = Query::ladder().run(workload);
  std::printf("\nladder on the stream workload: %s\n",
              ladder.to_string().c_str());
  if (ladder.certificate.present()) {
    std::printf("certificate check: %s\n",
                verify(workload, ladder.certificate).valid ? "VALID"
                                                           : "INVALID");
  }
  std::printf("Devi on the expanded set: %s\n",
              devi_test(ts).to_string().c_str());
  std::printf("All-approx (exact):       %s\n\n",
              all_approx_test(ts).to_string().c_str());

  // The RTC view (paper Fig. 4b): 3-segment demand approximation of the
  // burst stream vs its exact staircase.
  const rtc::ConcaveCurve curve =
      rtc::rtc_demand_bursty(200, 4, 5, 8, 40);
  std::printf("RTC 3-segment demand curve of the burst: %s\n",
              curve.to_string().c_str());
  std::printf("%6s %12s %12s\n", "I", "rtc(I)", "exact dbf(I)");
  for (Time i : {40, 45, 50, 55, 60, 100, 240, 440}) {
    std::printf("%6lld %12.1f %12lld\n", static_cast<long long>(i),
                curve.eval(static_cast<double>(i)),
                static_cast<long long>(streams[0].dbf(i)));
  }
  std::printf("\nfull comparison:\n%s\n",
              comparison_table(Workload::periodic(ts)).c_str());
  return 0;
}
