/// \file batch_analyze.cpp
/// Command-line batch analyzer — the CI-gate workflow: point it at task-
/// set files, get a verdict/effort table, CSV/JSON for dashboards, and a
/// non-zero exit code when anything is infeasible (or when exact tests
/// disagree, which would indicate a library bug).
///
///   ./batch_analyze set1.txt set2.txt ...
///       [--tests qpa,chakraborty,...]   (registry names, see --list)
///       [--ladder] [--epsilon 0.25] [--fallback qpa]
///       [--csv out.csv] [--json | --json=out.json] [--quiet] [--list]
///       [--metrics-json | --metrics-json=out.json]
///
/// `--metrics-json` re-runs every (set, backend) cell standalone with a
/// wall-clock probe and emits the obs metrics registry (per-backend
/// `query_ns_<backend>` latency histograms, log2 buckets) as JSON — the
/// dashboard-friendly companion to the effort columns.
///
/// Test selection is by backend-registry name (`--list` prints the
/// capability table), so the selection survives enum reordering and new
/// backends become selectable the moment they register.
///
/// `--ladder` selects exactly the tests the online AdmissionController
/// escalates through (utilization bound -> epsilon-approximate ->
/// exact fallback; see query/query.hpp default_ladder_kinds), so an
/// offline batch previews which rung would settle each set at admission
/// time. `--epsilon` tunes the approximate rung and `--fallback` names
/// the exact rung (any exact backend).
///
/// Without file arguments it demonstrates on the built-in literature
/// sets (paper Table 1).
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "lit/literature.hpp"
#include "model/io.hpp"
#include "obs/obs.hpp"
#include "query/query.hpp"
#include "util/cli.hpp"

namespace {

using namespace edfkit;

/// CliFlags' generic `--name value` parsing is greedy: a bare boolean
/// flag followed by a positional (`batch_analyze --json setA.txt`) would
/// absorb the file name — worst case opening an *input* file for output.
/// The boolean-ish flags --json and --list are therefore parsed strictly
/// as `--flag` / `--flag=value` from argv, and a space-separated token
/// that CliFlags absorbed is restored to the file list.
struct BareFlag {
  bool present = false;
  std::string value;  ///< from the `--flag=value` spelling only
};

BareFlag scan_bare(int argc, char** argv, const std::string& name,
                   std::vector<std::string>& restored) {
  BareFlag out;
  const std::string bare = "--" + name;
  const std::string eq = bare + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == bare) {
      out.present = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        restored.push_back(argv[i + 1]);  // absorbed positional
        ++i;
      }
    } else if (tok.rfind(eq, 0) == 0) {
      out.present = true;
      out.value = tok.substr(eq.size());
    }
  }
  return out;
}

std::vector<TestKind> parse_tests(const std::string& spec) {
  std::vector<TestKind> out;
  std::istringstream is(spec);
  std::string token;
  while (std::getline(is, token, ',')) {
    // resolve() throws UnknownBackendError with a did-you-mean list for
    // close names (--list shows the full registry).
    out.push_back(BackendRegistry::instance().resolve(token).kind);
  }
  if (out.empty()) throw std::invalid_argument("--tests selected nothing");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    std::vector<std::string> files = flags.rest();
    const BareFlag list_flag = scan_bare(argc, argv, "list", files);
    const BareFlag json_flag = scan_bare(argc, argv, "json", files);
    const BareFlag metrics_flag =
        scan_bare(argc, argv, "metrics-json", files);
    if (list_flag.present) {
      std::printf("%s", BackendRegistry::instance().capability_table().c_str());
      return 0;
    }

    Query query;
    const double epsilon = flags.get_double("epsilon", 0.25);
    if (flags.get_bool("ladder", false)) {
      // Mirror the online admission controller's escalation ladder.
      TestKind fallback = TestKind::Qpa;
      if (flags.has("fallback")) {
        const std::vector<TestKind> kinds =
            parse_tests(flags.get("fallback", ""));
        if (kinds.size() != 1 || !is_exact(kinds.front())) {
          throw std::invalid_argument(
              "--fallback must name one exact test");
        }
        fallback = kinds.front();
      }
      query = Query::ladder(fallback, epsilon);
      std::printf("admission ladder: ");
      for (const BackendSelection& s : query.backends()) {
        std::printf("%s ", to_string(s.kind));
      }
      std::printf("(epsilon=%.3f)\n\n", epsilon);
    } else {
      const std::vector<TestKind> kinds =
          flags.has("tests")
              ? parse_tests(flags.get("tests", ""))
              : std::vector<TestKind>{TestKind::Devi, TestKind::Dynamic,
                                      TestKind::AllApprox,
                                      TestKind::ProcessorDemand};
      for (const TestKind k : kinds) {
        BackendParams p = default_params(k);
        if (auto* ck = std::get_if<ChakrabortyParams>(&p)) {
          ck->epsilon = epsilon;
        }
        query.add(k, std::move(p));
      }
    }

    // The entries stay materialized (rather than going through
    // run_batch_files) so the --metrics-json timing pass below can
    // reuse them.
    std::vector<BatchEntry> entries;
    if (!files.empty()) {
      for (const std::string& path : files) {
        entries.push_back({path, load_task_set(path)});
      }
    } else {
      std::printf("no files given; analyzing the built-in literature sets\n"
                  "(usage: batch_analyze <taskset.txt>... [--tests a,b] "
                  "[--csv out.csv] [--json out.json])\n\n");
      for (const auto& s : lit::all_literature_sets()) {
        entries.push_back({s.name, s.tasks});
      }
    }
    const BatchReport report = run_batch(entries, query);

    if (!flags.get_bool("quiet", false)) {
      std::printf("%s", report.to_string().c_str());
    }
    if (flags.has("csv")) {
      std::ofstream out(flags.get("csv", "batch.csv"));
      out << report.to_csv();
      std::printf("csv written to %s\n", flags.get("csv", "").c_str());
    }
    if (json_flag.present) {
      // `--json` alone prints to stdout; `--json=FILE` writes the file.
      if (json_flag.value.empty()) {
        std::printf("%s\n", report.to_json().c_str());
      } else {
        std::ofstream out(json_flag.value);
        out << report.to_json();
        std::printf("json written to %s\n", json_flag.value.c_str());
      }
    }
    if (metrics_flag.present) {
      // Per-backend wall-clock latency: every (set, backend) cell runs
      // once more standalone, timed into a `query_ns_<backend>`
      // histogram. A second pass costs one extra batch but keeps the
      // main report's effort columns untouched by probe overhead.
      obs::Obs obs(obs::ObsConfig{true, false, 0});
      for (const BackendSelection& s : query.backends()) {
        obs::Histogram h = obs.query_ns(to_string(s.kind));
        const Query one = Query::single(s.kind, s.params);
        for (const BatchEntry& e : entries) {
          try {
            const std::uint64_t t0 = obs::now_ns();
            (void)one.run(e.tasks);
            h.record(obs::now_ns() - t0);
          } catch (const std::invalid_argument&) {
            // Backend does not support this workload kind — the main
            // report already shows the cell as skipped.
          }
        }
      }
      if (metrics_flag.value.empty()) {
        std::printf("%s\n", obs.registry().to_json().c_str());
      } else {
        std::ofstream out(metrics_flag.value);
        out << obs.registry().to_json();
        std::printf("metrics json written to %s\n",
                    metrics_flag.value.c_str());
      }
    }

    if (!report.exact_disagreements.empty()) return 3;  // library bug!
    // Gate: fail if any *exact* test found any set infeasible.
    for (const BatchRow& row : report.rows) {
      for (std::size_t k = 0; k < report.tests.size(); ++k) {
        if (is_exact(report.tests[k]) &&
            row.cells[k].verdict == Verdict::Infeasible) {
          std::printf("GATE: %s is infeasible\n", row.name.c_str());
          return 1;
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
