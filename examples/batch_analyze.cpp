/// \file batch_analyze.cpp
/// Command-line batch analyzer — the CI-gate workflow: point it at task-
/// set files, get a verdict/effort table, CSV for dashboards, and a
/// non-zero exit code when anything is infeasible (or when exact tests
/// disagree, which would indicate a library bug).
///
///   ./batch_analyze set1.txt set2.txt ...
///       [--tests devi,dynamic,all-approx,processor-demand,qpa]
///       [--ladder] [--epsilon 0.25] [--fallback qpa]
///       [--csv out.csv] [--quiet]
///
/// `--ladder` selects exactly the tests the online AdmissionController
/// escalates through (utilization bound -> epsilon-approximate ->
/// exact fallback; see src/admission/controller.hpp), so an offline
/// batch previews which rung would settle each set at admission time.
/// `--epsilon` tunes the approximate rung and `--fallback` names the
/// exact rung (any exact test kind).
///
/// Without file arguments it demonstrates on the built-in literature
/// sets (paper Table 1).
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "admission/controller.hpp"
#include "core/batch.hpp"
#include "lit/literature.hpp"
#include "util/cli.hpp"

namespace {

using namespace edfkit;

std::vector<TestKind> parse_tests(const std::string& spec) {
  std::vector<TestKind> out;
  std::istringstream is(spec);
  std::string token;
  while (std::getline(is, token, ',')) {
    bool found = false;
    for (const TestKind k : all_test_kinds()) {
      if (token == to_string(k)) {
        out.push_back(k);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown test '" + token +
                                  "' (see README for names)");
    }
  }
  if (out.empty()) throw std::invalid_argument("--tests selected nothing");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    BatchConfig cfg;
    if (flags.has("tests")) {
      cfg.tests = parse_tests(flags.get("tests", ""));
    }
    if (flags.get_bool("ladder", false)) {
      // Mirror the online admission controller's escalation ladder.
      AdmissionOptions admission;
      admission.epsilon = flags.get_double("epsilon", admission.epsilon);
      if (flags.has("fallback")) {
        const std::vector<TestKind> kinds =
            parse_tests(flags.get("fallback", ""));
        if (kinds.size() != 1 || !is_exact(kinds.front())) {
          throw std::invalid_argument(
              "--fallback must name one exact test");
        }
        admission.exact_fallback = kinds.front();
      }
      cfg.tests = admission_ladder_tests(admission);
      cfg.options.epsilon = admission.epsilon;
      std::printf("admission ladder: ");
      for (const TestKind k : cfg.tests) std::printf("%s ", to_string(k));
      std::printf("(epsilon=%.3f)\n\n", admission.epsilon);
    }

    BatchReport report;
    if (!flags.rest().empty()) {
      report = run_batch_files(flags.rest(), cfg);
    } else {
      std::printf("no files given; analyzing the built-in literature sets\n"
                  "(usage: batch_analyze <taskset.txt>... [--tests a,b] "
                  "[--csv out.csv])\n\n");
      std::vector<BatchEntry> entries;
      for (const auto& s : lit::all_literature_sets()) {
        entries.push_back({s.name, s.tasks});
      }
      report = run_batch(entries, cfg);
    }

    if (!flags.get_bool("quiet", false)) {
      std::printf("%s", report.to_string().c_str());
    }
    if (flags.has("csv")) {
      std::ofstream out(flags.get("csv", "batch.csv"));
      out << report.to_csv();
      std::printf("csv written to %s\n", flags.get("csv", "").c_str());
    }

    if (!report.exact_disagreements.empty()) return 3;  // library bug!
    // Gate: fail if any *exact* test found any set infeasible.
    for (const BatchRow& row : report.rows) {
      for (std::size_t k = 0; k < report.tests.size(); ++k) {
        if (is_exact(report.tests[k]) &&
            row.cells[k].verdict == Verdict::Infeasible) {
          std::printf("GATE: %s is infeasible\n", row.name.c_str());
          return 1;
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
