/// \file crash_recovery.cpp
/// Kill-and-recover harness: the executable proof that the durable
/// admission state (admission/snapshot.hpp) survives a real process
/// death — the crash-recovery CI job runs this on a seed matrix.
///
///   ./crash_recovery [--seed N] [--trials 3] [--events 8000]
///                    [--snapshot-every 48] [--kill-min-ms 5]
///                    [--kill-max-ms 120] [--dir crash-scratch]
///                    [--fsync none|record]
///                    [--flight-out <dir>/flight_recorder.json]
///
/// Each trial:
///   1. fork() a child that replays a deterministic group-churn trace
///      (U -> 1, mixed singles/groups/departures) through an
///      AdmissionController with journaling + periodic snapshots, then
///      SIGKILL it at a random point mid-churn (no warning, no flush —
///      exactly a crash).
///   2. Recover two controllers from the orphaned artifacts:
///        recovered — snapshot + journal-suffix replay (the production
///                    path), and
///        twin      — cold journal-only replay of the full op stream
///                    (the "uninterrupted" reference: every operation
///                    the dead process committed, re-executed from
///                    scratch).
///   3. Assert the two are bit-identical: resident sets, store headers
///      (epoch excluded — epochs count publications per process),
///      stats, and refinement levels per id.
///   4. Drive BOTH through a fresh continuation churn trace and assert
///      decision-stream equality event for event, then
///      verify_consistency() on each.
///
/// The recovered controller runs the continuation with the flight
/// recorder attached (the bare twin stays uninstrumented — the
/// decision-stream equality check doubles as proof that observability
/// is purely read-side), and each trial dumps the captured decision
/// traces as JSON to --flight-out.
///
/// Exit 0 = all trials passed. Exit 1 = divergence (the scratch dir is
/// left in place — CI uploads it as the failure artifact). Exit 2 =
/// harness error.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "admission/replay.hpp"
#include "admission/snapshot.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"

namespace {

using namespace edfkit;

AdmissionOptions controller_options() {
  AdmissionOptions opts;
  opts.epsilon = 0.25;
  // Rung <= 2 keeps child runs fast; decisions stay deterministic (the
  // full ladder is deterministic too, just slower under SIGKILL loops).
  opts.skip_exact = true;
  return opts;
}

std::vector<TraceEvent> churn_trace(std::uint64_t seed, std::size_t events,
                                    std::size_t warmup) {
  ChurnConfig churn;
  churn.warmup_arrivals = warmup;
  churn.events = events;
  churn.pool_utilization = 0.99;  // ride the admission boundary
  churn.family = ChurnConfig::Family::Fixed;
  churn.fixed_tasks = 40;
  churn.group_probability = 0.35;
  churn.group_size = 5;
  Rng rng(seed);
  return generate_churn_trace(rng, churn);
}

/// Continuation stepper: one event against one controller, tracking
/// key -> ids so departures withdraw what this controller admitted.
struct Stepper {
  AdmissionController& ctl;
  std::vector<std::pair<std::uint64_t, std::vector<TaskId>>> live;

  bool step(const TraceEvent& ev) {
    if (ev.op == TraceOp::Depart) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].first != ev.key) continue;
        (void)ctl.remove_group(live[i].second);
        live[i] = live.back();
        live.pop_back();
        break;
      }
      return true;
    }
    if (ev.op == TraceOp::Crash) return true;
    if (ev.op == TraceOp::ArriveGroup) {
      GroupDecision d = ctl.admit_group(ev.group);
      if (d.admitted) live.emplace_back(ev.key, std::move(d.ids));
      return d.admitted;
    }
    const AdmissionDecision d = ctl.try_admit(ev.task);
    if (d.admitted) live.emplace_back(ev.key, std::vector<TaskId>{d.id});
    return d.admitted;
  }
};

bool headers_equal(const StoreHeader& a, const StoreHeader& b) {
  // Everything but the epoch, which counts publications per process.
  return a.residents == b.residents && a.constrained == b.constrained &&
         a.live_checkpoints == b.live_checkpoints &&
         a.dead_checkpoints == b.dead_checkpoints &&
         a.segments == b.segments && a.utilization == b.utilization &&
         a.cert_ratio == b.cert_ratio;
}

bool resident_equal(const TaskSet& a, const TaskSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

/// One fork/kill/recover/compare cycle. Returns true on success.
bool run_trial(std::uint64_t seed, int trial, const std::string& dir,
               std::size_t events, std::size_t snapshot_every,
               Time kill_min_ms, Time kill_max_ms,
               persist::FsyncPolicy fsync, const std::string& flight_out) {
  const std::string snap = dir + "/ctl.snap";
  const std::string wal = dir + "/ctl.wal";
  std::remove(snap.c_str());
  std::remove((snap + ".tmp").c_str());
  std::remove(wal.c_str());

  const std::uint64_t trial_seed = seed + 1000003u * static_cast<std::uint64_t>(trial);
  const std::vector<TraceEvent> trace = churn_trace(trial_seed, events, 40);

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    // Child: churn with durability until killed (or until the trace
    // ends — a fast finish is fine, recovery then sees a complete run).
    try {
      AdmissionController ctl(controller_options());
      ReplayPersistence persistence;
      persistence.snapshot_path = snap;
      persistence.journal_path = wal;
      persistence.snapshot_every = snapshot_every;
      persistence.fsync = fsync;
      (void)replay_trace(trace, ctl, persistence);
    } catch (...) {
      _exit(3);
    }
    _exit(0);
  }

  Rng kill_rng(trial_seed ^ 0xDEADu);
  const Time delay_ms = kill_rng.uniform_time(kill_min_ms, kill_max_ms);
  ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;

  // Recover the production way (snapshot + suffix) and the reference
  // way (cold full-journal replay).
  AdmissionController recovered(controller_options());
  const RecoveryResult rec = recover(recovered, snap, wal);
  AdmissionController twin(controller_options());
  const RecoveryResult ref = recover(twin, "", wal);

  // Flight recorder on the recovered side only: probes are purely
  // read-side, so the instrumented `recovered` must keep matching the
  // bare `twin` decision for decision below.
  obs::Obs obs({}, 1);
  recovered.attach_obs(&obs);

  std::printf(
      "trial %d: killed=%d after %lldms | journal=%llu records%s | "
      "snapshot %s(lsn=%llu) +%llu replayed | resident=%zu U=%.4f\n",
      trial, killed ? 1 : 0, static_cast<long long>(delay_ms),
      static_cast<unsigned long long>(rec.journal_records),
      rec.torn_tail ? " (torn tail dropped)" : "",
      rec.snapshot_loaded ? "loaded " : "absent ",
      static_cast<unsigned long long>(rec.snapshot_lsn),
      static_cast<unsigned long long>(rec.replayed), recovered.size(),
      recovered.utilization());
  if (ref.replayed != ref.journal_records) {
    std::fprintf(stderr, "FAIL: cold twin replayed %llu of %llu records\n",
                 static_cast<unsigned long long>(ref.replayed),
                 static_cast<unsigned long long>(ref.journal_records));
    return false;
  }

  if (!resident_equal(recovered.snapshot(), twin.snapshot())) {
    std::fprintf(stderr, "FAIL: recovered resident set != twin\n");
    return false;
  }
  if (!headers_equal(recovered.demand_header(), twin.demand_header())) {
    std::fprintf(stderr, "FAIL: recovered store header != twin\n");
    return false;
  }
  if (recovered.stats().to_string() != twin.stats().to_string()) {
    std::fprintf(stderr, "FAIL: recovered stats != twin\n  rec:  %s\n  twin: %s\n",
                 recovered.stats().to_string().c_str(),
                 twin.stats().to_string().c_str());
    return false;
  }

  // Decision-stream equality under continued churn: identical states
  // must keep making identical decisions.
  const std::vector<TraceEvent> continuation =
      churn_trace(trial_seed ^ 0xC0FFEEu, events / 2, 0);
  Stepper a{recovered, {}};
  Stepper b{twin, {}};
  for (std::size_t i = 0; i < continuation.size(); ++i) {
    const bool da = a.step(continuation[i]);
    const bool db = b.step(continuation[i]);
    if (da != db) {
      std::fprintf(stderr,
                   "FAIL: continuation decision diverged at event %zu "
                   "(recovered=%d twin=%d)\n",
                   i, da ? 1 : 0, db ? 1 : 0);
      return false;
    }
  }
  if (!headers_equal(recovered.demand_header(), twin.demand_header())) {
    std::fprintf(stderr, "FAIL: headers diverged after continuation\n");
    return false;
  }
  if (!recovered.verify_consistency() || !twin.verify_consistency()) {
    std::fprintf(stderr, "FAIL: recovered store fails its own rebuild\n");
    return false;
  }

  // Dump what the recovered controller just decided (the continuation
  // run above) — the CI artifact for post-mortem inspection. Each
  // trial overwrites the file; the last one wins.
  std::vector<obs::DecisionTrace> captured;
  const std::size_t n = obs.recorder().capture_all(captured);
  std::ofstream fo(flight_out);
  if (fo) {
    fo << obs.recorder().to_json() << '\n';
    std::printf("trial %d: flight recorder: %zu decision traces -> %s\n",
                trial, n, flight_out.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot open --flight-out %s\n",
                 flight_out.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const auto seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 20050307));
    const int trials = static_cast<int>(flags.get_int("trials", 3));
    const auto events =
        static_cast<std::size_t>(flags.get_int("events", 8000));
    const auto snapshot_every =
        static_cast<std::size_t>(flags.get_int("snapshot-every", 48));
    const Time kill_min = flags.get_int("kill-min-ms", 5);
    const Time kill_max = flags.get_int("kill-max-ms", 120);
    const std::string dir = flags.get("dir", "crash-scratch");
    const std::string fsync_name = flags.get("fsync", "none");
    persist::FsyncPolicy fsync = persist::FsyncPolicy::None;
    if (fsync_name == "record") {
      fsync = persist::FsyncPolicy::EveryRecord;
    } else if (fsync_name != "none") {
      throw std::invalid_argument("unknown --fsync '" + fsync_name + "'");
    }
    const std::string flight_out =
        flags.get("flight-out", dir + "/flight_recorder.json");
    ::mkdir(dir.c_str(), 0755);

    std::printf("crash recovery harness: seed=%llu trials=%d events=%zu "
                "snapshot-every=%zu kill=[%lld,%lld]ms fsync=%s\n\n",
                static_cast<unsigned long long>(seed), trials, events,
                snapshot_every, static_cast<long long>(kill_min),
                static_cast<long long>(kill_max), fsync_name.c_str());

    for (int t = 0; t < trials; ++t) {
      if (!run_trial(seed, t, dir, events, snapshot_every, kill_min,
                     kill_max, fsync, flight_out)) {
        std::fprintf(stderr,
                     "\ntrial %d FAILED (seed %llu) — artifacts kept in "
                     "%s/\n",
                     t, static_cast<unsigned long long>(seed), dir.c_str());
        return 1;
      }
    }
    std::printf("\nall %d trials: recovered store bit-identical to the "
                "uninterrupted twin\n",
                trials);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
