/// \file admission_server.cpp
/// The admission engine as a real network service: a net::Server epoll
/// event loop serving the binary wire protocol (net/protocol.hpp) to
/// remote clients, multi-tenant, with per-tenant durability and
/// load-shedding backpressure.
///
///   ./admission_server [--port 7433] [--bind 127.0.0.1]
///                      [--data-dir DIR] [--checkpoint-every 4096]
///                      [--epsilon 0.1] [--skip-exact]
///                      [--max-pending 1024] [--max-residents 0]
///                      [--util-headroom 1.0] [--retry-after-ms 50]
///                      [--idle-timeout-ms 0] [--max-connections 256]
///                      [--max-fuse 64] [--reprobe-interval-ms 200]
///                      [--metrics-dump] [--trace-out flight.json]
///                      [--trace-capacity 512]
///                      [--replicate-to HOST:PORT]
///                      [--digest-interval-ms 250]
///                      [--standby] [--promote-on-signal]
///
/// Tenants are created on first HELLO; with --data-dir each tenant gets
/// its own snapshot + write-ahead journal under that directory and is
/// recovered from disk on first HELLO after a restart (client-held
/// TaskIds stay valid — controller replay is bit-identical). With
/// --checkpoint-every N each tenant snapshots and rotates its journal
/// every N journaled operations, bounding on-disk state.
///
/// Backpressure: --max-pending / --max-residents / --util-headroom
/// drive the shed policy (net/shed.hpp) — admits past the limits are
/// answered Shed with --retry-after-ms, without running the ladder.
///
/// Shutdown: SIGTERM (or SIGINT) stops the loop at the next tick
/// boundary, drains — fdatasyncs every tenant journal — then runs the
/// admission invariant (an exact from-scratch re-check of every
/// tenant's resident set) and emits the final metrics dump. SIGUSR1
/// dumps the metrics registry (Prometheus text format) to stderr
/// mid-run, serviced on the loop thread between ticks so the export
/// never runs in signal context.
///
/// Fault injection: the EDFKIT_FAULTS environment spec (src/fault)
/// arms persist/server failpoints at startup — the chaos CI job runs
/// this binary under fsync flaps, snapshot rename failures, and random
/// short writes. Armed points are announced on stdout, and the metrics
/// dumps append per-point hit/fire counters.
///
/// Replication (src/repl): --replicate-to HOST:PORT attaches a journal
/// shipper that streams every tenant's WAL to a standby server started
/// with --standby (which answers client mutations Unavailable until
/// promoted). --promote-on-signal makes SIGUSR2 promote a standby to
/// serving primary (refused while any tenant is diverged); the failover
/// CI job kills the primary, SIGUSR2s the standby, and lets clients
/// fail over.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "net/server.hpp"
#include "obs/obs.hpp"
#include "repl/shipper.hpp"
#include "util/cli.hpp"

namespace {

using namespace edfkit;

/// SIGTERM/SIGINT stop the loop; the drain happens on the main thread.
std::atomic<bool> g_stop{false};
/// stop() is async-signal-safe (one eventfd write), so the handler may
/// call it directly — that is what wakes a loop parked in epoll_wait.
net::Server* g_server = nullptr;

void on_sigterm(int) {
  g_stop.store(true, std::memory_order_relaxed);
  if (g_server != nullptr) g_server->stop();
}

/// SIGUSR1 requests a metrics dump; the handler only sets a flag — the
/// loop thread does the (allocating, non-async-signal-safe) export.
std::atomic<bool> g_dump{false};

void on_sigusr1(int) { g_dump.store(true, std::memory_order_relaxed); }

/// SIGUSR2 (with --promote-on-signal) requests standby promotion; like
/// the dump it only sets a flag — the loop thread runs promote().
std::atomic<bool> g_promote{false};

void on_sigusr2(int) { g_promote.store(true, std::memory_order_relaxed); }

/// Split "host:port" (last colon wins, so bare IPv4/hostnames only).
/// \throws std::runtime_error on a malformed spec.
std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    throw std::runtime_error("expected HOST:PORT, got '" + spec + "'");
  }
  const unsigned long port = std::stoul(spec.substr(colon + 1));
  if (port == 0 || port > 65535) {
    throw std::runtime_error("port out of range in '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

/// Append the failpoint hit/fire counters to a metrics dump — the
/// chaos harness reconciles fires against quarantine/retry metrics.
void dump_fault_counters(std::FILE* out) {
  for (const fault::FailPoint* fp : fault::list()) {
    if (fp->hits() == 0 && !fp->armed()) continue;
    std::fprintf(out, "edfkit_fault_hits_total{point=\"%s\"} %llu\n",
                 fp->name().c_str(),
                 static_cast<unsigned long long>(fp->hits()));
    std::fprintf(out, "edfkit_fault_fires_total{point=\"%s\"} %llu\n",
                 fp->name().c_str(),
                 static_cast<unsigned long long>(fp->fires()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);

    net::ServerOptions opts;
    opts.bind_address = flags.get("bind", "127.0.0.1");
    opts.port = static_cast<std::uint16_t>(flags.get_int("port", 7433));
    opts.max_connections =
        static_cast<std::size_t>(flags.get_int("max-connections", 256));
    opts.idle_timeout_ms =
        static_cast<std::uint64_t>(flags.get_int("idle-timeout-ms", 0));
    opts.max_fuse = static_cast<std::size_t>(flags.get_int("max-fuse", 64));
    opts.reprobe_interval_ms = static_cast<std::uint64_t>(
        flags.get_int("reprobe-interval-ms", 200));

    opts.tenants.data_dir = flags.get("data-dir", "");
    opts.tenants.checkpoint_every =
        static_cast<std::size_t>(flags.get_int("checkpoint-every", 4096));
    opts.tenants.admission.epsilon = flags.get_double("epsilon", 0.1);
    opts.tenants.admission.skip_exact = flags.get_bool("skip-exact", false);

    opts.shed.max_pending =
        static_cast<std::size_t>(flags.get_int("max-pending", 1024));
    opts.shed.max_residents =
        static_cast<std::size_t>(flags.get_int("max-residents", 0));
    opts.shed.utilization_headroom = flags.get_double("util-headroom", 1.0);
    opts.shed.retry_after_ms =
        static_cast<std::uint32_t>(flags.get_int("retry-after-ms", 50));

    opts.tenants.standby = flags.get_bool("standby", false);
    opts.digest_interval_ms = static_cast<std::uint64_t>(
        flags.get_int("digest-interval-ms", 250));
    const std::string replicate_to = flags.get("replicate-to", "");
    const bool promote_on_signal =
        flags.get_bool("promote-on-signal", false);

    const bool metrics_dump = flags.get_bool("metrics-dump", false);
    const std::string trace_out = flags.get("trace-out", "");
    obs::ObsConfig ocfg;
    ocfg.trace_capacity =
        static_cast<std::size_t>(flags.get_int("trace-capacity", 512));

    obs::Obs obs(ocfg, /*shards=*/1);
    // Chaos harnesses arm failpoints through the environment; a
    // malformed spec must abort loudly, not serve un-faulted.
    if (const char* spec = std::getenv("EDFKIT_FAULTS");
        spec != nullptr && *spec != '\0') {
      std::string err;
      if (!fault::configure(spec, &err)) {
        throw std::runtime_error("EDFKIT_FAULTS: " + err);
      }
      std::size_t armed = 0;
      for (const fault::FailPoint* fp : fault::list()) {
        armed += fp->armed() ? 1 : 0;
      }
      std::printf("fault injection: %zu failpoint(s) armed\n", armed);
    }

    // Primary-side replication: the shipper tails the same data-dir the
    // tenants journal into, so it must outlive the server (the server
    // holds only the raw pointer for digest pushes).
    std::unique_ptr<repl::Shipper> shipper;
    if (!replicate_to.empty()) {
      if (opts.tenants.data_dir.empty()) {
        throw std::runtime_error("--replicate-to requires --data-dir");
      }
      if (opts.tenants.standby) {
        throw std::runtime_error(
            "--replicate-to and --standby are mutually exclusive "
            "(multi-standby fan-out is a ROADMAP follow-on)");
      }
      const auto [rhost, rport] = parse_host_port(replicate_to);
      repl::ShipperOptions sopts;
      sopts.host = rhost;
      sopts.port = rport;
      sopts.data_dir = opts.tenants.data_dir;
      shipper = std::make_unique<repl::Shipper>(sopts, &obs);
      opts.shipper = shipper.get();
    }

    net::Server server(opts, &obs);
    g_server = &server;
    if (shipper) {
      shipper->start();
      std::printf("replicating to %s data-dir=%s\n", replicate_to.c_str(),
                  opts.tenants.data_dir.c_str());
    }

    std::signal(SIGTERM, on_sigterm);
    std::signal(SIGINT, on_sigterm);
    std::signal(SIGUSR1, on_sigusr1);
    if (promote_on_signal) std::signal(SIGUSR2, on_sigusr2);
    std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as EPIPE writes

    // The resolved port on one greppable line, flushed before serving —
    // harnesses start the server with --port 0 and scrape this.
    std::printf("listening on %s:%u data-dir=%s checkpoint-every=%zu "
                "epsilon=%.3f role=%s\n",
                opts.bind_address.c_str(), server.port(),
                opts.tenants.data_dir.empty() ? "(none)"
                                              : opts.tenants.data_dir.c_str(),
                opts.tenants.checkpoint_every,
                opts.tenants.admission.epsilon,
                opts.tenants.standby ? "standby" : "primary");
    std::fflush(stdout);

    // The event loop, driven tick by tick so SIGUSR1 dumps run on this
    // thread between ticks. stop() (from the SIGTERM handler) both
    // interrupts a parked epoll_wait and sets the flag poll_once acts
    // on, so shutdown latency is one tick, not one timeout.
    while (!g_stop.load(std::memory_order_relaxed)) {
      server.poll_once(/*timeout_ms=*/100);
      if (g_dump.exchange(false, std::memory_order_relaxed)) {
        const std::string text = obs.registry().to_prometheus();
        std::fwrite(text.data(), 1, text.size(), stderr);
        dump_fault_counters(stderr);
        std::fflush(stderr);
      }
      if (g_promote.exchange(false, std::memory_order_relaxed)) {
        // Refuse while any follower tenant is diverged — a diverged
        // store serving admits would hand out wrong answers; the
        // operator re-seeds (restart the standby) instead.
        bool diverged = false;
        server.tenants().for_each([&](net::Tenant& t) {
          if (t.diverged()) {
            std::fprintf(stderr, "promote refused: tenant %s diverged: %s\n",
                         t.name().c_str(), t.diverged_reason().c_str());
            diverged = true;
          }
        });
        if (!diverged) {
          const std::uint64_t n = server.promote();
          std::printf("promoted: %llu tenant(s) now serving\n",
                      static_cast<unsigned long long>(n));
          std::fflush(stdout);
        }
      }
    }
    if (shipper) shipper->stop();

    // SIGTERM drain: every tenant journal fdatasynced while no request
    // is in flight (the loop is stopped) — a restart recovers exactly
    // the decisions clients were told about.
    server.tenants().flush_all();
    std::printf("drained: %zu tenants flushed, %zu connections open\n",
                server.tenants().size(), server.connections());

    // The admission invariant, per tenant: every resident set the
    // server built over the wire is provably feasible under an exact
    // from-scratch test.
    bool invariant_ok = true;
    server.tenants().for_each([&](net::Tenant& t) {
      const FeasibilityResult r =
          t.controller().analyze_resident(TestKind::ProcessorDemand);
      const StoreHeader h = t.controller().demand_header();
      std::printf("tenant %s: residents=%llu exact re-check: %s "
                  "journal=[%llu, %llu)\n",
                  t.name().c_str(),
                  static_cast<unsigned long long>(h.residents),
                  to_string(r.verdict),
                  static_cast<unsigned long long>(t.journal_base_lsn()),
                  static_cast<unsigned long long>(t.journal_lsn()));
      if (!r.feasible() && h.residents > 0) invariant_ok = false;
    });

    // Final metrics dump — the same registry SIGUSR1 exports mid-run.
    if (metrics_dump) {
      const std::string text = obs.registry().to_prometheus();
      std::fwrite(text.data(), 1, text.size(), stdout);
      dump_fault_counters(stdout);
    }
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        throw std::runtime_error("cannot open --trace-out " + trace_out);
      }
      out << obs.recorder().to_json() << '\n';
      std::printf("flight recorder -> %s\n", trace_out.c_str());
    }

    g_server = nullptr;
    return invariant_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
