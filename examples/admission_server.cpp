/// \file admission_server.cpp
/// Simulated online admission server: a sharded AdmissionEngine serving
/// concurrent client streams of task arrivals/departures.
///
///   ./admission_server [--shards 4] [--workers 8] [--streams 4]
///                      [--events 500] [--epsilon 0.1]
///                      [--placement first-fit|worst-fit|best-fit]
///                      [--utilization 0.9] [--seed N]
///                      [--snapshot engine.snap] [--journal engine.wal]
///                      [--checkpoint-ms 250] [--fsync none|record]
///                      [--metrics-dump] [--trace-out flight.json]
///                      [--trace-capacity 512]
///
/// Each stream generates its own churn trace (gen/scenario §5 workload)
/// and pushes arrivals through the engine's worker pool via submit();
/// departures withdraw previously admitted tasks. The run ends with the
/// merged engine statistics and a from-scratch exact re-analysis of
/// every shard — which must come back Feasible (the admission
/// invariant).
///
/// Durability (admission/snapshot.hpp): with --snapshot/--journal the
/// server recovers any existing state on startup (snapshot + committed
/// journal suffix), journals every committed placement, and checkpoints
/// periodically from a background thread. SIGTERM drains the client
/// streams at the next event boundary, then flushes one final snapshot
/// and fsyncs the journal before exiting — a restart resumes from
/// exactly that state.
///
/// Observability (src/obs/): the server always runs with metrics and
/// the per-shard flight recorder attached. SIGUSR1 dumps the registry
/// (Prometheus text format) to stderr at any point mid-run without
/// pausing the streams; --metrics-dump prints the same dump to stdout
/// at the end; --trace-out writes the flight recorder's most recent
/// decision traces as JSON.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "admission/engine.hpp"
#include "admission/replay.hpp"
#include "admission/snapshot.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"

namespace {

using namespace edfkit;

/// SIGTERM drains the streams; the flush happens on the main thread.
std::atomic<bool> g_stop{false};

void on_sigterm(int) { g_stop.store(true, std::memory_order_relaxed); }

/// SIGUSR1 requests a metrics dump; the handler only sets a flag — a
/// monitor thread does the (allocating, non-async-signal-safe) export.
std::atomic<bool> g_dump{false};

void on_sigusr1(int) { g_dump.store(true, std::memory_order_relaxed); }

PlacementPolicy parse_placement(const std::string& s) {
  for (const PlacementPolicy p :
       {PlacementPolicy::FirstFit, PlacementPolicy::WorstFit,
        PlacementPolicy::BestFit}) {
    if (s == to_string(p)) return p;
  }
  throw std::invalid_argument("unknown placement '" + s +
                              "' (first-fit|worst-fit|best-fit)");
}

/// One client stream: drives its trace through submit()/remove().
void run_stream(AdmissionEngine& engine, const std::vector<TraceEvent>& trace,
                std::uint64_t* admitted, std::uint64_t* rejected) {
  std::unordered_map<std::uint64_t, GlobalTaskId> resident;
  for (const TraceEvent& ev : trace) {
    if (g_stop.load(std::memory_order_relaxed)) return;  // SIGTERM drain
    if (ev.op == TraceOp::Arrive) {
      const PlacementDecision d = engine.submit(ev.task).get();
      if (d.admitted) {
        resident.emplace(ev.key, d.id);
        ++*admitted;
      } else {
        ++*rejected;
      }
    } else {
      const auto it = resident.find(ev.key);
      if (it != resident.end()) {
        engine.remove(it->second);
        resident.erase(it);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);

    EngineOptions opts;
    opts.shards = static_cast<std::size_t>(flags.get_int("shards", 4));
    opts.workers = static_cast<std::size_t>(flags.get_int("workers", 0));
    opts.placement =
        parse_placement(flags.get("placement", "worst-fit"));
    opts.admission.epsilon = flags.get_double("epsilon", 0.1);

    const auto streams =
        static_cast<std::size_t>(flags.get_int("streams", 4));
    ChurnConfig churn;
    churn.events = static_cast<std::size_t>(flags.get_int("events", 500));
    churn.pool_utilization = flags.get_double("utilization", 0.9);
    const auto seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 20050307));

    const bool metrics_dump = flags.get_bool("metrics-dump", false);
    const std::string trace_out = flags.get("trace-out", "");
    obs::ObsConfig ocfg;
    ocfg.trace_capacity =
        static_cast<std::size_t>(flags.get_int("trace-capacity", 512));

    const std::string snapshot_path = flags.get("snapshot", "");
    const std::string journal_path = flags.get("journal", "");
    const auto checkpoint_ms = flags.get_int("checkpoint-ms", 250);
    const std::string fsync_name = flags.get("fsync", "none");
    persist::JournalOptions jopts;
    if (fsync_name == "record") {
      jopts.fsync = persist::FsyncPolicy::EveryRecord;
    } else if (fsync_name != "none") {
      throw std::invalid_argument("unknown --fsync '" + fsync_name + "'");
    }

    // The journal and the Obs sink outlive the engine (declared first,
    // destroyed last): worker threads may append / record until the
    // engine's destructor joins them.
    std::optional<persist::Journal> journal;
    obs::Obs obs(ocfg, std::max<std::size_t>(1, opts.shards));
    AdmissionEngine engine(opts);
    engine.attach_obs(&obs);

    // Resume whatever a previous process left behind, then arm
    // durability for this run. Recovery runs before any stream starts
    // (the engine is not serving yet).
    if (!snapshot_path.empty() || !journal_path.empty()) {
      const RecoveryResult rec =
          recover(engine, snapshot_path, journal_path);
      std::printf("recovery: snapshot %s(lsn=%llu), %llu/%llu journal "
                  "records replayed%s%s, %zu resident\n",
                  rec.snapshot_loaded ? "loaded " : "absent ",
                  static_cast<unsigned long long>(rec.snapshot_lsn),
                  static_cast<unsigned long long>(rec.replayed),
                  static_cast<unsigned long long>(rec.journal_records),
                  rec.torn_tail ? ", torn tail dropped" : "",
                  rec.skipped != 0 ? ", some records skipped" : "",
                  engine.stats().resident);
    }
    if (!journal_path.empty()) {
      journal.emplace(persist::Journal::open_append(journal_path, jopts));
      journal->attach_obs(obs.journal());
      engine.attach_journal(&*journal);
    }
    std::optional<CheckpointDaemon> checkpointer;
    if (!snapshot_path.empty()) {
      checkpointer.emplace(engine, snapshot_path,
                           std::chrono::milliseconds(checkpoint_ms),
                           journal.has_value() ? &*journal : nullptr);
    }
    if (!snapshot_path.empty() || !journal_path.empty()) {
      // Journal-only runs need the graceful drain too: SIGTERM must
      // end in a journal fsync, not a mid-append kill.
      std::signal(SIGTERM, on_sigterm);
    }

    // SIGUSR1 → live metrics dump to stderr, serviced by a polling
    // monitor so the export (which allocates) never runs in signal
    // context. The registry aggregates lock-free, so dumping does not
    // pause the streams.
    std::signal(SIGUSR1, on_sigusr1);
    std::atomic<bool> monitor_stop{false};
    std::thread monitor([&] {
      while (!monitor_stop.load(std::memory_order_relaxed)) {
        if (g_dump.exchange(false, std::memory_order_relaxed)) {
          const std::string text = obs.registry().to_prometheus();
          std::fwrite(text.data(), 1, text.size(), stderr);
          std::fflush(stderr);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });

    const std::string workers =
        opts.workers == 0 ? "auto" : std::to_string(opts.workers);
    std::printf("admission server: %zu shards, %s workers, %s placement, "
                "epsilon=%.3f\n%zu streams x %zu events\n\n",
                engine.shards(), workers.c_str(), to_string(opts.placement),
                opts.admission.epsilon, streams, churn.events);

    Rng rng(seed);
    std::vector<std::vector<TraceEvent>> traces;
    traces.reserve(streams);
    for (std::size_t s = 0; s < streams; ++s) {
      Rng child = rng.fork();
      traces.push_back(generate_churn_trace(child, churn));
    }

    std::vector<std::uint64_t> admitted(streams, 0);
    std::vector<std::uint64_t> rejected(streams, 0);
    const auto start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> clients;
      clients.reserve(streams);
      for (std::size_t s = 0; s < streams; ++s) {
        clients.emplace_back(run_stream, std::ref(engine),
                             std::cref(traces[s]), &admitted[s],
                             &rejected[s]);
      }
      for (std::thread& c : clients) c.join();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::uint64_t events = 0;
    for (const auto& t : traces) events += t.size();
    for (std::size_t s = 0; s < streams; ++s) {
      std::printf("stream %zu: admitted=%llu rejected=%llu\n", s,
                  static_cast<unsigned long long>(admitted[s]),
                  static_cast<unsigned long long>(rejected[s]));
    }
    std::printf("\n%s\n", engine.stats().to_string().c_str());
    std::printf("\n%llu events in %.3fs -> %.0f decisions/sec\n",
                static_cast<unsigned long long>(events), secs,
                static_cast<double>(events) / secs);

    monitor_stop.store(true, std::memory_order_relaxed);
    monitor.join();
    if (metrics_dump) {
      const std::string text = obs.registry().to_prometheus();
      std::fwrite(text.data(), 1, text.size(), stdout);
    }
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        throw std::runtime_error("cannot open --trace-out " + trace_out);
      }
      out << obs.recorder().to_json() << '\n';
      std::printf("flight recorder -> %s\n", trace_out.c_str());
    }

    // Durable shutdown: one final snapshot + journal fsync while the
    // engine is quiesced (streams joined above). This is the same path
    // a SIGTERM drain takes — a restart resumes from exactly here.
    if (checkpointer.has_value()) checkpointer->flush_now();
    if (journal.has_value()) journal->sync();
    if (g_stop.load(std::memory_order_relaxed)) {
      std::printf("SIGTERM: streams drained, state flushed to %s%s%s\n",
                  snapshot_path.c_str(),
                  snapshot_path.empty() || journal_path.empty() ? ""
                                                                : " + ",
                  journal_path.c_str());
    }

    // The admission invariant: every shard's resident set is provably
    // feasible under an exact from-scratch test.
    for (std::size_t i = 0; i < engine.shards(); ++i) {
      const FeasibilityResult r =
          engine.analyze_shard(i, TestKind::ProcessorDemand);
      std::printf("shard %zu exact re-check: %s\n", i,
                  to_string(r.verdict));
      if (!r.feasible() && engine.shard_snapshot(i).size() > 0) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
